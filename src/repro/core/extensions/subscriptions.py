"""Extension (§10) — tracking on subscription versus free websites.

The paper proposes comparing "the presence and amount of tracking
services between the subscription and free modes" as future work.  This
module joins the §4.1 business-model classification against the §4.2/§5
tracking measurements, per monetization model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from ...browser.events import CrawlLog
from ...net.url import registrable_domain
from ..business import BusinessReport, MODEL_FREE, MODEL_NONE, MODEL_PAID
from ..cookie_analysis import MIN_ID_LENGTH
from ..partylabel import PartyLabels

__all__ = ["ModelTrackingRow", "SubscriptionTrackingReport",
           "compare_tracking_by_model"]


@dataclass(frozen=True)
class ModelTrackingRow:
    """Tracking surface for one monetization model."""

    model: str
    site_count: int
    mean_third_parties: float
    mean_third_party_id_cookies: float
    sites_with_tracking_fraction: float


@dataclass
class SubscriptionTrackingReport:
    rows: List[ModelTrackingRow] = field(default_factory=list)

    def row(self, model: str) -> Optional[ModelTrackingRow]:
        return next((row for row in self.rows if row.model == model), None)

    @property
    def ad_supported_vs_paid_ratio(self) -> float:
        """How much heavier tracking is on ad-supported sites than paid."""
        free = self.row(MODEL_NONE)
        paid = self.row(MODEL_PAID)
        if free is None or paid is None or not paid.mean_third_parties:
            return 0.0
        return free.mean_third_parties / paid.mean_third_parties


def compare_tracking_by_model(
    business: BusinessReport,
    labels: PartyLabels,
    log: CrawlLog,
) -> SubscriptionTrackingReport:
    """Aggregate third-party and cookie counts per monetization model."""
    model_of = {entry.site_domain: entry.model for entry in business.models}

    cookie_counts: Dict[str, int] = {}
    seen = set()
    for cookie in log.cookies:
        key = (cookie.page_domain, cookie.domain, cookie.name, cookie.value)
        if key in seen:
            continue
        seen.add(key)
        if cookie.session or len(cookie.value) < MIN_ID_LENGTH:
            continue
        if registrable_domain(cookie.domain) != \
                registrable_domain(cookie.page_domain):
            cookie_counts[cookie.page_domain] = \
                cookie_counts.get(cookie.page_domain, 0) + 1

    report = SubscriptionTrackingReport()
    for model in (MODEL_NONE, MODEL_FREE, MODEL_PAID):
        sites = [site for site, site_model in model_of.items()
                 if site_model == model]
        if not sites:
            report.rows.append(ModelTrackingRow(model, 0, 0.0, 0.0, 0.0))
            continue
        third_parties = [len(labels.third_parties_of(site)) for site in sites]
        cookies = [cookie_counts.get(site, 0) for site in sites]
        tracked = sum(1 for count in cookies if count > 0)
        report.rows.append(
            ModelTrackingRow(
                model=model,
                site_count=len(sites),
                mean_third_parties=sum(third_parties) / len(sites),
                mean_third_party_id_cookies=sum(cookies) / len(sites),
                sites_with_tracking_fraction=tracked / len(sites),
            )
        )
    return report
