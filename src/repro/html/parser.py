"""A tolerant HTML parser producing :class:`repro.html.dom.Element` trees.

Built on the standard library's :class:`html.parser.HTMLParser`, with the
error recovery real crawlers need: unclosed tags are closed implicitly,
stray end tags are ignored, and void elements never push onto the stack.
"""

from __future__ import annotations

from html.parser import HTMLParser
from typing import Dict, List, Optional, Tuple

from ..cache import BoundedCache, content_key
from .dom import Element, VOID_TAGS

__all__ = ["parse_html", "parse_html_cached", "parse_cache_stats"]

#: Elements whose open instance is implicitly closed by a sibling of the
#: same tag (enough recovery for the generator's output and common HTML).
_IMPLICIT_CLOSE = frozenset({"li", "p", "option", "tr", "td", "th"})


class _TreeBuilder(HTMLParser):
    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self.root = Element("html")
        self._stack: List[Element] = [self.root]
        self._saw_html = False

    @property
    def _top(self) -> Element:
        return self._stack[-1]

    def handle_starttag(self, tag: str, attrs: List[Tuple[str, Optional[str]]]) -> None:
        tag = tag.lower()
        attr_map: Dict[str, str] = {k.lower(): (v or "") for k, v in attrs}
        if tag == "html" and not self._saw_html:
            # Merge attributes into the implicit root instead of nesting.
            self._saw_html = True
            self.root.attrs.update(attr_map)
            return
        if tag in _IMPLICIT_CLOSE and self._top.tag == tag:
            self._stack.pop()
        element = self._top.append_child(tag, attr_map)
        if tag not in VOID_TAGS:
            self._stack.append(element)

    def handle_startendtag(self, tag: str, attrs: List[Tuple[str, Optional[str]]]) -> None:
        attr_map = {k.lower(): (v or "") for k, v in attrs}
        self._top.append_child(tag.lower(), attr_map)

    def handle_endtag(self, tag: str) -> None:
        tag = tag.lower()
        if tag in VOID_TAGS:
            return
        # Close up to the nearest matching open tag; ignore stray end tags.
        for index in range(len(self._stack) - 1, 0, -1):
            if self._stack[index].tag == tag:
                del self._stack[index:]
                return

    def handle_data(self, data: str) -> None:
        if data.strip():
            self._top.append_text(data)


def parse_html(markup: str) -> Element:
    """Parse ``markup`` and return the root element.

    Never raises on malformed input; recovery mirrors browser behavior
    closely enough for the study's DOM inspections.
    """
    builder = _TreeBuilder()
    builder.feed(markup)
    builder.close()
    return builder.root


#: Parse cache keyed on content hash.  Third-party payloads (ad frames,
#: bidder scripts' HTML wrappers) repeat thousands of times per crawl;
#: parsing each distinct payload once removes the single hottest item in
#: the crawl profile.
_PARSE_CACHE = BoundedCache(maxsize=8_192)


def parse_html_cached(markup: str) -> Element:
    """Memoized :func:`parse_html`, keyed on a hash of ``markup``.

    The returned tree is shared between all callers with identical
    markup and MUST be treated as read-only.  Use plain
    :func:`parse_html` when the caller mutates the tree.
    """
    return _PARSE_CACHE.get_or_create(
        content_key(markup), lambda: parse_html(markup)
    )


def parse_cache_stats():
    """Hit/miss counters of the process-wide parse cache."""
    return _PARSE_CACHE.stats
