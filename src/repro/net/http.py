"""HTTP message model used by the simulated browser and servers.

The crawler records every request/response pair, mirroring what OpenWPM
persists to its SQLite log.  Headers are case-insensitive multimaps with
convenience accessors for the handful of headers the analyses rely on
(``Referer``, ``Set-Cookie``, ``Cookie``, ``Location``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from .url import URL

__all__ = ["Headers", "Request", "Response", "STATUS_REASONS"]

STATUS_REASONS = {
    200: "OK",
    204: "No Content",
    301: "Moved Permanently",
    302: "Found",
    307: "Temporary Redirect",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    451: "Unavailable For Legal Reasons",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
}


class Headers:
    """A case-insensitive, order-preserving HTTP header multimap."""

    def __init__(self, items: Optional[List[Tuple[str, str]]] = None) -> None:
        self._items: List[Tuple[str, str]] = []
        if items:
            for name, value in items:
                self.add(name, value)

    def add(self, name: str, value: str) -> None:
        """Append a header field (duplicates allowed, e.g. ``Set-Cookie``)."""
        self._items.append((name, value))

    def set(self, name: str, value: str) -> None:
        """Replace all occurrences of ``name`` with a single value."""
        lowered = name.lower()
        self._items = [(n, v) for n, v in self._items if n.lower() != lowered]
        self._items.append((name, value))

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """Return the first value for ``name``, or ``default``."""
        lowered = name.lower()
        for existing, value in self._items:
            if existing.lower() == lowered:
                return value
        return default

    def get_all(self, name: str) -> List[str]:
        """Return every value for ``name`` in insertion order."""
        lowered = name.lower()
        return [v for n, v in self._items if n.lower() == lowered]

    def remove(self, name: str) -> None:
        lowered = name.lower()
        self._items = [(n, v) for n, v in self._items if n.lower() != lowered]

    def __contains__(self, name: str) -> bool:
        return self.get(name) is not None

    def __iter__(self) -> Iterator[Tuple[str, str]]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Headers):
            return NotImplemented
        return self._items == other._items

    def copy(self) -> "Headers":
        return Headers(list(self._items))

    def __repr__(self) -> str:
        return f"Headers({self._items!r})"


@dataclass
class Request:
    """An HTTP request issued by the browser.

    ``initiator`` is the FQDN of the document or script that caused the
    request; ``referrer`` carries the ``Referer`` header value used for
    inclusion-chain reconstruction (Bashir & Wilson style).
    """

    url: URL
    method: str = "GET"
    headers: Headers = field(default_factory=Headers)
    body: str = ""
    initiator: Optional[str] = None
    resource_type: str = "document"  # document | script | image | xhr | sub_frame

    @property
    def referrer(self) -> Optional[str]:
        return self.headers.get("Referer")

    @property
    def cookie_header(self) -> Optional[str]:
        return self.headers.get("Cookie")

    def __repr__(self) -> str:
        return f"Request({self.method} {self.url})"


@dataclass
class Response:
    """An HTTP response as observed by the browser.

    ``manifest`` is the server's *render manifest*: the ordered
    ``(kind, url)`` subresource references of an HTML body (kinds:
    ``script``/``img``/``iframe``/``link``), as the renderer emitted
    them.  The synthetic servers render every page from a structured
    embed list, so they can hand that structure to the browser and spare
    it re-parsing markup the universe itself just produced.  ``None``
    means "no manifest available" (non-HTML payloads, or a server that
    does not produce one) — the browser then falls back to parsing.
    """

    url: URL
    status: int
    headers: Headers = field(default_factory=Headers)
    body: str = ""
    manifest: Optional[Tuple[Tuple[str, str], ...]] = None

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def is_redirect(self) -> bool:
        return self.status in (301, 302, 307)

    @property
    def reason(self) -> str:
        return STATUS_REASONS.get(self.status, "Unknown")

    @property
    def location(self) -> Optional[str]:
        return self.headers.get("Location")

    @property
    def set_cookie_headers(self) -> List[str]:
        return self.headers.get_all("Set-Cookie")

    @property
    def content_type(self) -> str:
        return self.headers.get("Content-Type", "text/html")

    def __repr__(self) -> str:
        return f"Response({self.status} {self.url})"
