"""Levenshtein edit distance and normalized domain similarity.

Section 4.2 labels an embedded service as first party when its FQDN is
within similarity 0.7 of the host website's FQDN, grouping e.g.
``doublepimp.com`` with ``doublepimpssl.com`` while keeping
``doubleclick.net`` separate.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["levenshtein_distance", "similarity", "domains_similar"]


def levenshtein_distance(a: Sequence, b: Sequence) -> int:
    """Classic dynamic-programming edit distance (insert/delete/substitute)."""
    if len(a) < len(b):
        a, b = b, a
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, item_a in enumerate(a, start=1):
        current = [i]
        for j, item_b in enumerate(b, start=1):
            cost = 0 if item_a == item_b else 1
            current.append(
                min(
                    previous[j] + 1,        # deletion
                    current[j - 1] + 1,     # insertion
                    previous[j - 1] + cost,  # substitution
                )
            )
        previous = current
    return previous[-1]


def similarity(a: str, b: str) -> float:
    """Normalized similarity in [0, 1]: 1 - distance / max(len)."""
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    return 1.0 - levenshtein_distance(a, b) / longest


def domains_similar(a: str, b: str, *, threshold: float = 0.7) -> bool:
    """The paper's same-entity test for two FQDNs.

    The comparison strips a leading ``www.`` and compares the remainder
    case-insensitively; a similarity strictly above ``threshold`` counts as
    the same entity.
    """
    a = a.lower()
    b = b.lower()
    if a.startswith("www."):
        a = a[4:]
    if b.startswith("www."):
        b = b[4:]
    if a == b:
        return True
    return similarity(a, b) > threshold
