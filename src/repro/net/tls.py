"""X.509 certificate model for the synthetic universe.

The paper (Section 4.2) uses certificate metadata two ways:

1. *first/third-party labeling* — an embedded service sharing a certificate
   (same Subject organization or overlapping SANs) with the host website is
   treated as first party;
2. *organization attribution* — the Subject ``O`` field names the parent
   company of a third-party domain, completing Disconnect's list.

We model exactly the fields those joins need.  Some real certificates carry
only a CN and no organization (domain-validated certs); the generator
reproduces that, and the paper's rule of ignoring such certificates is
implemented in :mod:`repro.core.attribution`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import FrozenSet, Optional

from .url import is_subdomain_of

__all__ = ["Certificate", "certificate_matches_host", "share_organization"]

_DOMAIN_RE = re.compile(
    r"^\*?\.?[a-z0-9]([a-z0-9-]*[a-z0-9])?(\.[a-z0-9]([a-z0-9-]*[a-z0-9])?)+$"
)


def _looks_like_domain(text: str) -> bool:
    """True when a certificate Subject field is just a hostname."""
    return bool(_DOMAIN_RE.match(text.strip().lower())) and " " not in text


@dataclass(frozen=True)
class Certificate:
    """A leaf X.509 certificate presented during a TLS handshake."""

    subject_cn: str
    subject_o: Optional[str] = None
    issuer_o: str = "Synthetic CA"
    san: FrozenSet[str] = frozenset()
    self_signed: bool = False

    @property
    def names(self) -> FrozenSet[str]:
        """Every DNS name the certificate is valid for (CN + SANs)."""
        return self.san | {self.subject_cn}

    @property
    def has_organization(self) -> bool:
        """True when Subject O carries a real company name.

        Domain-validated certificates often repeat the domain in the
        Subject; the paper discards those when attributing organizations.
        A Subject that *looks like* a hostname (single lowercase token with
        internal dots, e.g. ``ads.example.com``) is treated as such, while
        names with legal punctuation ("ExoClick S.L.") pass.
        """
        if not self.subject_o:
            return False
        return not _looks_like_domain(self.subject_o)

    def covers(self, host: str) -> bool:
        """True if this certificate is valid for ``host`` (wildcards allowed)."""
        host = host.lower()
        for name in self.names:
            name = name.lower()
            if name.startswith("*."):
                base = name[2:]
                # A wildcard matches exactly one extra label.
                if host.endswith("." + base) and host[: -(len(base) + 1)].count(".") == 0:
                    return True
            elif name == host:
                return True
        return False


def certificate_matches_host(cert: Certificate, host: str) -> bool:
    """Loose host/certificate relation used for party labeling.

    True when the certificate covers the host directly, or any certificate
    name shares a registrable relationship with it (subdomain either way).
    """
    if cert.covers(host):
        return True
    for name in cert.names:
        bare = name[2:] if name.startswith("*.") else name
        if is_subdomain_of(host, bare) or is_subdomain_of(bare, host):
            return True
    return False


def share_organization(a: Optional[Certificate], b: Optional[Certificate]) -> bool:
    """True when two certificates declare the same Subject organization."""
    if a is None or b is None:
        return False
    if not (a.has_organization and b.has_organization):
        return False
    return a.subject_o.strip().lower() == b.subject_o.strip().lower()
