"""Section 3 / Figure 1 — popularity and rank stability of the corpus.

For every corpus site: best and median Alexa rank throughout 2018 and the
fraction of days it appeared in the top-1M at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..webgen.rank import RankTrajectory, tier_of_rank
from ..webgen.universe import Universe

__all__ = ["SitePopularity", "PopularityReport", "analyze_popularity", "tier_counts"]


@dataclass(frozen=True)
class SitePopularity:
    """One site's Figure 1 data point."""

    domain: str
    best_rank: int           # 0 when never listed
    median_rank: int
    presence_fraction: float
    always_top_1m: bool
    always_top_1k: bool

    @property
    def tier(self) -> int:
        return tier_of_rank(self.best_rank) if self.best_rank else 3


@dataclass
class PopularityReport:
    """Aggregate of the corpus's year in the rank lists."""

    sites: List[SitePopularity]

    @property
    def always_top_1m_count(self) -> int:
        return sum(1 for site in self.sites if site.always_top_1m)

    @property
    def always_top_1k_count(self) -> int:
        return sum(1 for site in self.sites if site.always_top_1k)

    @property
    def always_top_1m_fraction(self) -> float:
        return self.always_top_1m_count / len(self.sites) if self.sites else 0.0

    def sorted_by_best(self) -> List[SitePopularity]:
        """Sites ordered by best rank — Figure 1's x-axis ordering."""
        listed = [site for site in self.sites if site.best_rank]
        unlisted = [site for site in self.sites if not site.best_rank]
        return sorted(listed, key=lambda site: site.best_rank) + unlisted

    def figure1_series(self) -> Tuple[List[int], List[int], List[float]]:
        """(best ranks, median ranks, presence fractions) in plot order."""
        ordered = self.sorted_by_best()
        return (
            [site.best_rank for site in ordered],
            [site.median_rank for site in ordered],
            [site.presence_fraction for site in ordered],
        )


def analyze_popularity(universe: Universe, corpus: Iterable[str]) -> PopularityReport:
    """Join the corpus against the longitudinal rank dataset."""
    sites = []
    for domain in corpus:
        trajectory: Optional[RankTrajectory] = universe.rank_history(domain)
        if trajectory is None:
            sites.append(SitePopularity(domain, 0, 0, 0.0, False, False))
            continue
        sites.append(
            SitePopularity(
                domain=domain,
                best_rank=trajectory.observed_best,
                median_rank=trajectory.observed_median,
                presence_fraction=trajectory.presence_fraction,
                always_top_1m=trajectory.always_present,
                always_top_1k=trajectory.always_top_1k,
            )
        )
    return PopularityReport(sites)


def tier_counts(report: PopularityReport) -> Dict[int, int]:
    """Sites per popularity tier (Table 3 / Table 6 row structure)."""
    counts: Dict[int, int] = {0: 0, 1: 0, 2: 0, 3: 0}
    for site in report.sites:
        counts[site.tier] += 1
    return counts
