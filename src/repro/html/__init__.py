"""HTML substrate: DOM model, tolerant parser, and query helpers."""

from .dom import Element, TextNode, VOID_TAGS
from .parser import parse_html
from .query import (
    body,
    elements_with_keyword,
    find_all,
    find_first,
    head,
    links,
    meta_tags,
    scripts,
)

__all__ = [
    "Element",
    "TextNode",
    "VOID_TAGS",
    "parse_html",
    "body",
    "elements_with_keyword",
    "find_all",
    "find_first",
    "head",
    "links",
    "meta_tags",
    "scripts",
]
