"""Tests for utilities, name generation, and policy-text generation."""

import pytest

from repro.util import rng_for, stable_hash, token_for
from repro.webgen.names import ADULT_KEYWORDS, NameFactory
from repro.webgen.policytext import (
    DOMINANT_TEMPLATE,
    PolicyGenerator,
    PolicySpec,
    TEMPLATE_COUNT,
)


class TestUtil:
    def test_stable_hash_differs_by_part_order(self):
        assert stable_hash("a", "b") != stable_hash("b", "a")

    def test_stable_hash_no_concatenation_collision(self):
        # ("ab", "c") must differ from ("a", "bc").
        assert stable_hash("ab", "c") != stable_hash("a", "bc")

    def test_rng_for_deterministic(self):
        assert rng_for(1, "x").random() == rng_for(1, "x").random()
        assert rng_for(1, "x").random() != rng_for(1, "y").random()

    def test_token_for_zero_length(self):
        assert token_for(0, "a") == ""

    def test_token_for_long(self):
        token = token_for(3000, "seed")
        assert len(token) == 3000


class TestNameFactory:
    @pytest.fixture()
    def factory(self):
        return NameFactory(rng_for(5, "names-test"))

    def test_porn_domain_contains_keyword(self, factory):
        for _ in range(30):
            domain = factory.porn_domain(with_keyword=True)
            assert any(keyword in domain for keyword in ADULT_KEYWORDS)

    def test_non_keyword_domain_avoids_keywords(self, factory):
        for _ in range(30):
            domain = factory.porn_domain(with_keyword=False)
            assert not any(keyword in domain for keyword in ADULT_KEYWORDS)

    def test_false_positive_has_keyword_substring(self, factory):
        for _ in range(30):
            domain = factory.false_positive_domain()
            assert any(keyword in domain
                       for keyword in ("sex", "tube", "mature", "gay", "xxx"))

    def test_uniqueness(self, factory):
        domains = {factory.adtech_domain() for _ in range(300)}
        assert len(domains) == 300

    def test_reserve_blocks_collision(self, factory):
        factory.reserve("pornhub.com")
        assert factory.is_taken("pornhub.com")
        for _ in range(50):
            assert factory.porn_domain() != "pornhub.com"

    def test_obscure_domains_look_obscure(self, factory):
        domain = factory.obscure_domain()
        stem, _, tld = domain.rpartition(".")
        assert tld in ("party", "top", "pro", "info", "biz")
        assert stem.isalpha()


class TestPolicyGenerator:
    @pytest.fixture()
    def generator(self):
        return PolicyGenerator(rng_for(6, "policy-test"))

    def test_spec_lengths_bounded(self, generator):
        for _ in range(100):
            spec = generator.sample_spec()
            assert 1_088 <= spec.target_length <= 243_649

    def test_dominant_template_majority(self, generator):
        specs = [generator.sample_spec() for _ in range(300)]
        dominant = sum(1 for s in specs if s.template_id == DOMINANT_TEMPLATE)
        assert dominant > 150

    def test_operator_template_pinned(self, generator):
        spec = generator.sample_spec(operator_template=3)
        assert spec.template_id == 3

    def test_render_reaches_target_length(self, generator):
        spec = generator.sample_spec()
        text = generator.render(spec, site_domain="x.com", company="ACME Ltd")
        assert len(text) >= spec.target_length

    def test_render_substitutes_company(self, generator):
        spec = PolicySpec(
            template_id=DOMINANT_TEMPLATE, target_length=1_088,
            mentions_gdpr=False, discloses_cookies=True,
            discloses_data_types=True, discloses_third_parties=True,
        )
        text = generator.render(spec, site_domain="x.com",
                                company="Gamma Entertainment Ltd.")
        assert "Gamma Entertainment Ltd." in text
        assert "privacy@x.com" in text

    def test_gdpr_section_conditional(self, generator):
        base = dict(template_id=0, target_length=1_088,
                    discloses_cookies=False, discloses_data_types=False,
                    discloses_third_parties=False)
        with_gdpr = generator.render(
            PolicySpec(mentions_gdpr=True, **base), site_domain="a.com",
            company=None)
        without = generator.render(
            PolicySpec(mentions_gdpr=False, **base), site_domain="a.com",
            company=None)
        assert "GDPR" in with_gdpr
        assert "GDPR" not in without

    def test_full_list_rendered(self, generator):
        spec = PolicySpec(
            template_id=0, target_length=1_088, mentions_gdpr=False,
            discloses_cookies=True, discloses_data_types=True,
            discloses_third_parties=True, full_third_party_list=True,
        )
        text = generator.render(spec, site_domain="a.com", company=None,
                                third_parties=["exoclick.com", "juicyads.com"])
        assert "exoclick.com" in text
        assert "juicyads.com" in text

    def test_same_template_same_company_near_identical(self, generator):
        from repro.text.tfidf import TfIdfVectorizer, cosine_similarity

        spec = PolicySpec(
            template_id=1, target_length=2_000, mentions_gdpr=True,
            discloses_cookies=True, discloses_data_types=True,
            discloses_third_parties=True,
        )
        text_a = generator.render(spec, site_domain="a.com", company="Z Ltd")
        text_b = generator.render(spec, site_domain="b.com", company="Z Ltd")
        vectors = TfIdfVectorizer().fit_transform([text_a, text_b])
        assert cosine_similarity(vectors[0], vectors[1]) > 0.95

    def test_different_templates_dissimilar(self, generator):
        from repro.text.tfidf import TfIdfVectorizer, cosine_similarity

        def spec(template):
            return PolicySpec(
                template_id=template, target_length=1_088,
                mentions_gdpr=False, discloses_cookies=False,
                discloses_data_types=False, discloses_third_parties=False,
            )
        text_a = generator.render(spec(1), site_domain="a.com", company=None)
        text_b = generator.render(spec(6), site_domain="a.com", company=None)
        vectors = TfIdfVectorizer().fit_transform([text_a, text_b])
        assert cosine_similarity(vectors[0], vectors[1]) < 0.9
