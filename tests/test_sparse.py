"""Sparse similarity engine: parity with the linear/dense references,
edge cases, block-size invariance, and the memory regression that proves
no dense ``(n_docs × vocab)`` or ``n × n`` array ever materializes."""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.core.compliance.policies import (
    pairwise_similarity_fractions,
    pairwise_similarity_fractions_dense,
)
from repro.core.owners import (
    _policy_similarity_pairs,
    _policy_similarity_pairs_dense,
)
from repro.text.sparse import CsrMatrix, SimilarityEngine, engine_stats
from repro.text.tfidf import (
    TfIdfVectorizer,
    pairwise_similarities,
    pairwise_similarities_linear,
)


def make_corpus(n_docs, vocab=120, seed=7, min_len=5, max_len=60):
    rng = np.random.default_rng(seed)
    words = [f"term{i}" for i in range(vocab)]
    return [
        " ".join(rng.choice(words, size=int(rng.integers(min_len, max_len))))
        for _ in range(n_docs)
    ]


class TestCsrMatrix:
    def test_dense_rows_roundtrip(self):
        engine = SimilarityEngine(use_idf=False).fit(["a b b", "c", "a c"])
        matrix = engine.matrix
        full = matrix.dense_rows(0, matrix.shape[0])
        for start in range(matrix.shape[0]):
            block = matrix.dense_rows(start, start + 1)
            assert np.array_equal(block[0], full[start])

    def test_rows_are_l2_normalized(self):
        engine = SimilarityEngine(use_idf=True).fit(make_corpus(12))
        norms = engine.matrix.row_norms()
        assert np.allclose(norms[norms > 0], 1.0)

    def test_empty_matrix(self):
        matrix = CsrMatrix(np.zeros(0), np.zeros(0, dtype=np.int64),
                           np.zeros(1, dtype=np.int64), (0, 0))
        assert matrix.nnz == 0
        assert matrix.row_norms().shape == (0,)


class TestEdgeCases:
    """Each edge case runs through BOTH the sparse engine and the
    retained linear/dense reference, asserting equal results to 1e-9."""

    def assert_stream_parity(self, documents):
        sparse = list(pairwise_similarities(documents))
        linear = list(pairwise_similarities_linear(documents))
        assert [pair[:2] for pair in sparse] == [pair[:2] for pair in linear]
        for (_, _, a), (_, _, b) in zip(sparse, linear):
            assert a == pytest.approx(b, abs=1e-9)

    def assert_fraction_parity(self, documents, threshold=0.5):
        sparse = pairwise_similarity_fractions(documents,
                                               threshold=threshold)
        dense = pairwise_similarity_fractions_dense(documents,
                                                    threshold=threshold)
        assert sparse[1] == dense[1]
        assert sparse[0] == pytest.approx(dense[0], abs=1e-9)

    def test_empty_corpus(self):
        assert list(pairwise_similarities([])) == []
        assert list(pairwise_similarities_linear([])) == []
        assert pairwise_similarity_fractions([]) == (0.0, 0)
        assert _policy_similarity_pairs(None, [], threshold=0.5) == []
        engine = SimilarityEngine().fit([])
        assert engine.n_docs == 0
        assert engine.count_pairs_above(0.5) == (0, 0)
        assert list(engine.similar_pairs(0.5)) == []

    def test_single_document(self):
        assert list(pairwise_similarities(["only doc"])) == []
        assert pairwise_similarity_fractions(["only doc"]) == (0.0, 0)
        assert _policy_similarity_pairs(None, ["only doc"],
                                        threshold=0.5) == []

    def test_all_identical_documents(self):
        documents = ["same text here"] * 6
        self.assert_stream_parity(documents)
        self.assert_fraction_parity(documents)
        fraction, pairs = pairwise_similarity_fractions(documents)
        assert pairs == 15
        assert fraction == pytest.approx(1.0)
        assert _policy_similarity_pairs(None, documents, threshold=0.9) == \
            [(i, j) for i in range(6) for j in range(i + 1, 6)]

    def test_zero_in_vocabulary_terms(self):
        # min_df=2 drops every term of the singleton documents; their
        # rows are all-zero and must cosine to 0 against everything.
        documents = ["shared words here", "shared words here",
                     "unique singleton text", "another lonely document"]
        vectorizer = TfIdfVectorizer(min_df=2)
        sparse = list(pairwise_similarities(documents,
                                            vectorizer=vectorizer))
        linear = list(pairwise_similarities_linear(
            documents, vectorizer=TfIdfVectorizer(min_df=2)))
        for (_, _, a), (_, _, b) in zip(sparse, linear):
            assert a == pytest.approx(b, abs=1e-9)
        values = {pair[:2]: pair[2] for pair in sparse}
        assert values[(0, 1)] == pytest.approx(1.0)
        assert values[(0, 2)] == 0.0
        assert values[(2, 3)] == 0.0

    def test_empty_string_documents(self):
        documents = ["", "words appear here", "", "words appear here"]
        self.assert_stream_parity(documents)
        self.assert_fraction_parity(documents)

    def test_min_df_filtering(self):
        documents = make_corpus(15, vocab=30, seed=3)
        for min_df in (1, 2, 4):
            engine = SimilarityEngine(min_df=min_df).fit(documents)
            vectorizer = TfIdfVectorizer(min_df=min_df)
            vectorizer.fit(documents)
            assert engine.vocabulary_size == vectorizer.vocabulary_size
            sparse = list(pairwise_similarities(
                documents, vectorizer=TfIdfVectorizer(min_df=min_df)))
            linear = list(pairwise_similarities_linear(
                documents, vectorizer=TfIdfVectorizer(min_df=min_df)))
            for (_, _, a), (_, _, b) in zip(sparse, linear):
                assert a == pytest.approx(b, abs=1e-9)

    def test_random_corpus_parity(self):
        documents = make_corpus(40)
        self.assert_stream_parity(documents)
        for threshold in (0.1, 0.3, 0.5, 0.8):
            self.assert_fraction_parity(documents, threshold)
            assert _policy_similarity_pairs(
                None, documents, threshold=threshold
            ) == _policy_similarity_pairs_dense(
                None, documents, threshold=threshold)


class TestBlocking:
    def test_block_size_invariance(self):
        documents = make_corpus(33, seed=11)
        reference = SimilarityEngine(block_size=1000).fit(documents)
        expected_counts = reference.count_pairs_above(0.3)
        expected_pairs = list(
            SimilarityEngine(block_size=1000).fit(documents)
            .similar_pairs(0.3))
        for block_size in (1, 2, 7, 32, 33):
            engine = SimilarityEngine(block_size=block_size).fit(documents)
            assert engine.count_pairs_above(0.3) == expected_counts
            engine = SimilarityEngine(block_size=block_size).fit(documents)
            assert list(engine.similar_pairs(0.3)) == expected_pairs

    def test_pair_order_matches_argwhere(self):
        # Row-major upper-triangle order, exactly like
        # np.argwhere(np.triu(gram > t, k=1)) on the dense path.
        documents = make_corpus(21, seed=5)
        pairs = _policy_similarity_pairs(None, documents, threshold=0.2)
        assert pairs == sorted(pairs)
        assert all(i < j for i, j in pairs)

    def test_strip_shapes(self):
        engine = SimilarityEngine(block_size=4).fit(make_corpus(10))
        strips = list(engine.gram_strips())
        assert [start for start, _ in strips] == [0, 4, 8]
        assert [strip.shape for _, strip in strips] == \
            [(4, 10), (4, 6), (2, 2)]

    def test_counters(self):
        before = engine_stats().snapshot()
        engine = SimilarityEngine(block_size=8).fit(make_corpus(20))
        count, _ = engine.count_pairs_above(0.2)
        after = engine_stats().snapshot()
        assert after["engines"] == before["engines"] + 1
        assert after["documents"] == before["documents"] + 20
        assert after["blocks"] > before["blocks"]
        assert after["candidate_pairs"] == \
            before["candidate_pairs"] + count
        assert engine.pairs_streamed == count
        assert engine.blocks_computed == 6  # 3 + 2 + 1 upper blocks


class TestMemoryRegression:
    """Scale-0.2-sized corpus (~1,400 documents): the sparse path must
    stay far below the dense path's peak and must never allocate an
    ``n × n`` float matrix."""

    N_DOCS = 1400  # the scale-0.2 corpus holds 1,368 sites

    @pytest.fixture(scope="class")
    def corpus(self):
        return make_corpus(self.N_DOCS, vocab=800, seed=2, min_len=20,
                           max_len=120)

    def _peak_bytes(self, thunk):
        # Warm-up run first: tokenization fills the shared term-count
        # cache, and those dict allocations would otherwise drown the
        # engine's own footprint at this corpus size.  The second run
        # measures the similarity path itself.
        thunk()
        tracemalloc.start()
        tracemalloc.reset_peak()
        thunk()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return peak

    def test_owner_pairs_peak_memory(self, corpus):
        n = len(corpus)
        sparse_peak = self._peak_bytes(
            lambda: _policy_similarity_pairs(None, corpus, threshold=0.9))
        dense_peak = self._peak_bytes(
            lambda: _policy_similarity_pairs_dense(None, corpus,
                                                   threshold=0.9))
        # No n×n float gram (and certainly no (n × vocab) dense matrix).
        assert sparse_peak < n * n * 8
        assert sparse_peak < dense_peak / 2

    def test_fraction_peak_memory(self, corpus):
        n = len(corpus)
        sparse_peak = self._peak_bytes(
            lambda: pairwise_similarity_fractions(corpus))
        dense_peak = self._peak_bytes(
            lambda: pairwise_similarity_fractions_dense(corpus))
        assert sparse_peak < n * n * 8
        assert sparse_peak < dense_peak / 2
