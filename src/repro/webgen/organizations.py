"""Organizations: porn-site operators and third-party parent companies.

Section 4.1 identifies 24 companies owning 286 porn sites (Table 1), mostly
via TF-IDF similarity of privacy policies and ``<head>`` markup plus
DNS/WHOIS/X.509 joins.  Section 4.2(3) attributes third-party domains to
1,014 parent companies, mostly via X.509 Subject organizations.

This module holds the operator roster (from the calibration table) and an
allocator that mints long-tail third-party organizations, each owning a
handful of domains — giving attribution something real to recover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .config import CalibrationTargets

__all__ = ["PornOperator", "operators_from_targets", "TailOrgAllocator"]


@dataclass(frozen=True)
class PornOperator:
    """A company operating a cluster of pornographic websites."""

    name: str
    site_count: int
    flagship_domain: str
    flagship_best_rank: int

    @property
    def legal_name(self) -> str:
        """The string that appears in X.509 Subject O fields and policies."""
        if any(suffix in self.name for suffix in ("LTD", "Ltd", "Inc", "Media", "Holding")):
            return self.name
        return f"{self.name} Ltd."


def operators_from_targets(targets: CalibrationTargets) -> List[PornOperator]:
    """Build the operator roster from the calibration table (Table 1)."""
    return [
        PornOperator(name, count, flagship, rank)
        for name, count, flagship, rank in targets.owner_clusters
    ]


_TAIL_ORG_WORDS = (
    "Apex", "Blue", "Crimson", "Delta", "Echo", "Falcon", "Granite", "Harbor",
    "Ion", "Jade", "Kite", "Lumen", "Mosaic", "Nimbus", "Onyx", "Pivot",
    "Quartz", "Ridge", "Summit", "Tidal", "Umber", "Vertex", "Willow", "Zenith",
    "Nova", "Orbit", "Pulse", "Raven", "Slate", "Terra",
)

_TAIL_ORG_SUFFIXES = (
    "Media Group", "Digital Ltd", "Networks Inc.", "Interactive LLC",
    "Ad Solutions", "Online Media", "Technologies S.L.", "Marketing B.V.",
    "Data Systems", "Labs OU",
)


class TailOrgAllocator:
    """Mints long-tail third-party organizations and assigns domains.

    Each organization owns between one and ``max_domains`` service domains;
    74% of domains end up attributable (their certificates carry the
    organization name), matching Section 4.2(3).
    """

    def __init__(
        self,
        rng: np.random.Generator,
        *,
        mean_domains_per_org: float = 3.5,
        max_domains: int = 8,
    ) -> None:
        self._rng = rng
        self._mean = mean_domains_per_org
        self._max = max_domains
        self._minted: Dict[str, int] = {}
        self._current_org: Optional[str] = None
        self._remaining_slots = 0

    def _mint_name(self) -> str:
        for _ in range(128):
            first = _TAIL_ORG_WORDS[int(self._rng.integers(0, len(_TAIL_ORG_WORDS)))]
            second = _TAIL_ORG_WORDS[int(self._rng.integers(0, len(_TAIL_ORG_WORDS)))]
            suffix = _TAIL_ORG_SUFFIXES[int(self._rng.integers(0, len(_TAIL_ORG_SUFFIXES)))]
            name = f"{first}{second} {suffix}" if first != second else f"{first} {suffix}"
            if name not in self._minted:
                self._minted[name] = 0
                return name
        # Pool exhausted: disambiguate with a counter.
        base = f"{_TAIL_ORG_WORDS[0]} {_TAIL_ORG_SUFFIXES[0]}"
        counter = len(self._minted)
        name = f"{base} {counter}"
        self._minted[name] = 0
        return name

    def next_org(self) -> str:
        """The organization that should own the next domain.

        Domains are assigned to the current organization until its sampled
        slot budget runs out, then a new organization is minted.
        """
        if self._remaining_slots <= 0 or self._current_org is None:
            self._current_org = self._mint_name()
            # Geometric-ish size: 1 + Poisson(mean - 1), capped.
            size = 1 + int(self._rng.poisson(max(self._mean - 1.0, 0.0)))
            self._remaining_slots = min(size, self._max)
        self._remaining_slots -= 1
        self._minted[self._current_org] += 1
        return self._current_org

    @property
    def organizations(self) -> Dict[str, int]:
        """Minted organizations and how many domains each received."""
        return dict(self._minted)
