"""§3 — corpus compilation and sanitization (8,099 candidates -> 6,843)."""

from conftest import scaled

from repro.core.corpus import compile_candidates, sanitize_candidates


def test_sec3_corpus(benchmark, study, paper, reporter):
    candidates, sanitized = benchmark.pedantic(
        lambda: study.corpus(), rounds=1, iterations=1
    )
    by_source = candidates.count_by_source()
    reporter.row("candidate websites", scaled(paper.candidates_total),
                 len(candidates))
    reporter.row("  from aggregators", scaled(paper.from_aggregators),
                 by_source.get("aggregator", 0))
    reporter.row("  from Alexa Adult category",
                 scaled(paper.from_alexa_category),
                 by_source.get("alexa_category", 0))
    reporter.row("  from keyword search", scaled(paper.from_keyword_search),
                 by_source.get("keyword", 0))
    reporter.row("false positives removed", scaled(paper.false_positives),
                 sanitized.false_positives)
    reporter.row("  unresponsive", scaled(paper.unresponsive_candidates),
                 len(sanitized.unresponsive))
    reporter.row("sanitized corpus", scaled(paper.sanitized_corpus),
                 len(sanitized.corpus))

    expected = scaled(paper.sanitized_corpus)
    assert abs(len(sanitized.corpus) - expected) <= expected * 0.05
