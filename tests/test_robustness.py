"""Failure injection and empty-input robustness for every analysis."""

import pytest

from repro.browser.events import CrawlLog
from repro.core.ats import ATSClassifier
from repro.core.business import classify_business_models
from repro.core.compliance.banners import analyze_banners, detect_banner
from repro.core.compliance.policies import analyze_policies
from repro.core.cookie_analysis import analyze_cookies
from repro.core.cookie_sync import detect_cookie_sync
from repro.core.fingerprinting import analyze_fingerprinting
from repro.core.https_analysis import analyze_https
from repro.core.malware import analyze_malware
from repro.core.partylabel import PartyLabels, label_parties
from repro.core.popularity import PopularityReport
from repro.html.parser import parse_html


class TestEmptyInputs:
    def test_empty_log_everywhere(self):
        log = CrawlLog()
        labels = label_parties(log)
        assert labels.all_third_party_fqdns == set()
        stats = analyze_cookies(log)
        assert stats.total_cookies == 0
        assert stats.sites_with_cookies_fraction == 0.0
        sync = detect_cookie_sync(log)
        assert sync.pair_count == 0
        assert sync.coverage_of([]) == 0.0
        fingerprinting = analyze_fingerprinting([])
        assert fingerprinting.unlisted_canvas_fraction() == 0.0
        https = analyze_https(log, labels, PopularityReport([]))
        assert https.not_fully_https_fraction == 0.0
        malware = analyze_malware(log, labels, lambda domain: 0)
        assert not malware.malicious_sites
        banners = analyze_banners(log)
        assert banners.total_fraction == 0.0

    def test_empty_policy_analysis(self):
        report = analyze_policies([], corpus_size=0)
        assert report.presence_fraction == 0.0
        assert report.similar_pair_fraction == 0.0
        assert report.mean_letters == 0.0

    def test_empty_business_classification(self):
        report = classify_business_models([])
        assert report.subscription_fraction == 0.0
        assert report.paid_fraction_of_subscriptions == 0.0

    def test_empty_filter_lists(self):
        classifier = ATSClassifier.from_texts("", "! only comments")
        assert not classifier.matches_url("https://anything.com/x")
        assert not classifier.matches_domain("anything.com")
        result = classifier.classify_log(CrawlLog())
        assert result.fqdn_count == 0


class TestMalformedInputs:
    def test_banner_detector_on_garbage_html(self):
        assert detect_banner("<<<<not html at all >>>") is None
        assert detect_banner("") is None

    def test_parser_never_raises(self):
        for markup in ("", "<", "<div", "</nope>", "<a href=>",
                       "<script>raw < text</script>", "\x00\x01"):
            parse_html(markup)

    def test_sync_detector_on_invalid_urls(self):
        from repro.browser.events import CookieRecord, RequestRecord

        log = CrawlLog()
        log.cookies.append(CookieRecord(
            page_domain="p.com", set_by_host="o.com", domain="o.com",
            name="uid", value="v" * 12, session=False, secure=True,
            over_https=True, seq=1,
        ))
        log.requests.append(RequestRecord(
            url="not-a-valid-url::", fqdn="", scheme="", page_domain="p.com",
            resource_type="image", initiator=None, referrer=None, seq=2,
        ))
        assert detect_cookie_sync(log).pair_count == 0

    def test_party_label_with_bad_referrer(self):
        from repro.browser.events import RequestRecord

        log = CrawlLog()
        log.requests.append(RequestRecord(
            url="https://tracker-net.com/x.js", fqdn="tracker-net.com",
            scheme="https", page_domain="bigporn-page.com",
            resource_type="script", initiator=None,
            referrer=":::garbage:::", seq=1, status=200,
        ))
        labels = label_parties(log)
        # Unparseable referrer -> conservatively treated as dynamic.
        assert "tracker-net.com" in labels.all_dynamic_fqdns

    def test_cookie_analysis_with_exotic_values(self):
        from repro.browser.events import CookieRecord, PageVisit

        log = CrawlLog(client_ip="31.0.0.1")
        log.visits.append(PageVisit("p.com", "https://p.com/", True))
        for value in ("\x00\x01\x02binary", "=" * 40, "🍪" * 10, " " * 20):
            log.cookies.append(CookieRecord(
                page_domain="p.com", set_by_host="t.com", domain="t.com",
                name="odd", value=value, session=False, secure=True,
                over_https=True, seq=log.next_seq(),
            ))
        stats = analyze_cookies(log)  # must not raise
        assert stats.total_cookies >= 1


class TestCrawlFailureHandling:
    def test_dead_universe_site_produces_failed_visit(self, universe,
                                                      vantage_points):
        from repro.browser.browser import Browser
        from repro.crawler.vpn import client_for

        browser = Browser(universe, client_for(vantage_points.home))
        visit = browser.visit("no-such-site-anywhere.example")
        assert not visit.success
        assert visit.failure_reason == "NXDOMAIN"

    def test_analysis_tolerates_partial_crawl(self, universe, vantage_points,
                                              crawlable_porn):
        """A crawl mixing live, flaky, and dead sites still analyzes."""
        from repro.crawler.openwpm import OpenWPMCrawler

        dead = [d for d, s in universe.porn_sites.items()
                if not s.responsive][:2]
        flaky = [d for d, s in universe.porn_sites.items()
                 if s.responsive and s.crawl_flaky][:2]
        crawler = OpenWPMCrawler(universe, vantage_points.home)
        log = crawler.crawl(crawlable_porn[:5] + dead + flaky)
        labels = label_parties(log, cert_lookup=universe.certificate_for)
        stats = analyze_cookies(log)
        assert stats.sites_visited == 5
        assert labels.all_third_party_fqdns


class TestCrossAnalysisConsistency:
    """Different analyses over the same crawl must agree with each other."""

    def test_banner_sites_within_corpus(self, study):
        corpus = set(study.corpus_domains())
        for observation in study.banners("ES").observations:
            assert observation.site_domain in corpus

    def test_sync_origins_are_cookie_setters_or_sites(self, study, universe):
        sync = study.cookie_sync()
        cookie_domains = {
            c.domain for c in study.porn_log().cookies
        }
        from repro.net.url import registrable_domain

        cookie_bases = {registrable_domain(d) for d in cookie_domains}
        for origin in sync.origins:
            assert origin in cookie_bases

    def test_fingerprinting_sites_were_crawled(self, study):
        crawled = {v.site_domain for v in study.porn_log().successful_visits()}
        assert study.fingerprinting().canvas_sites <= crawled

    def test_https_rows_cover_crawled_sites(self, study):
        report = study.https_report()
        total = sum(row.site_count for row in report.rows)
        assert total == len(study.porn_log().successful_visits())

    def test_malware_affected_sites_embed_flagged_domains(self, study):
        malware = study.malware()
        labels = study.porn_labels()
        from repro.net.url import registrable_domain

        for site, domains in \
                malware.sites_with_malicious_third_parties.items():
            embedded = {registrable_domain(f)
                        for f in labels.third_parties_of(site)}
            assert domains <= embedded

    def test_table2_and_table3_consistent(self, study):
        table2 = study.table2()
        table3 = study.table3()
        union = set()
        for row_set in table3._tier_sets:
            union |= row_set
        assert len(union) == table2.porn_third_party
