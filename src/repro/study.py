"""End-to-end orchestration of the whole study (Figure 2's workflow).

:class:`Study` wires the pipeline together — corpus compilation, the
OpenWPM-style crawl (single session, landing pages only), the Selenium
interaction pass, and every Section 4-7 analysis — with caching so that
examples and benchmarks can pull any intermediate without recomputation.

Typical use::

    from repro import Study, UniverseConfig
    study = Study.build(UniverseConfig(scale=0.1))
    table2 = study.table2()
    stats = study.cookie_stats()
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .browser.events import CrawlLog
from .core.ats import ATSClassifier, ATSResult
from .core.attribution import AttributionResult, attribute_organizations
from .core.business import BusinessReport, classify_business_models
from .core.compliance.age_verification import (
    AgeVerificationReport,
    study_age_verification,
)
from .core.compliance.banners import BannerReport, analyze_banners
from .core.compliance.policies import (
    CollectedPolicy,
    PolicyReport,
    analyze_policies,
    collect_policies,
)
from .core.cookie_analysis import CookieStats, analyze_cookies
from .core.cookie_sync import SyncReport, detect_cookie_sync
from .core.corpus import CandidateSet, SanitizedCorpus, build_corpus
from .core.ecosystem import (
    OrganizationPrevalence,
    Table2,
    Table3,
    build_figure3,
    build_table2,
    build_table3,
)
from .core.fingerprinting import FingerprintingReport, analyze_fingerprinting
from .core.geodiff import CountryObservation, GeoReport, analyze_geography
from .core.https_analysis import HTTPSReport, analyze_https
from .core.malware import MalwareReport, analyze_malware
from .core.mapmerge import (
    merge_ats,
    merge_banners,
    merge_cookies,
    merge_fingerprinting,
    merge_https,
    merge_labels,
    merge_malware,
    merge_sync,
)
from .core.owners import OwnerReport, discover_owners
from .core.partylabel import PartyLabels, label_parties
from .core.popularity import PopularityReport, analyze_popularity
from .crawler.executor import (
    ANALYSIS_ATS,
    ANALYSIS_LABELS,
    ANALYSIS_MALWARE,
    CrawlExecutor,
    CrawlOutcome,
    CrawlSpec,
    default_parallelism,
)
from .crawler.openwpm import OpenWPMCrawler
from .crawler.selenium import SeleniumCrawler, SiteInspection
from .crawler.vpn import VantagePointManager
from .net.url import registrable_domain
from .webgen.builder import build_universe
from .webgen.config import UniverseConfig
from .webgen.universe import Universe

__all__ = ["Study"]


class Study:
    """The full measurement study over one synthetic universe."""

    def __init__(
        self,
        universe: Universe,
        *,
        vantage_points: Optional[VantagePointManager] = None,
        home_country: str = "ES",
        parallelism: Optional[int] = None,
        store: Optional[object] = None,
        store_only: bool = False,
        store_shards: Optional[int] = None,
        baseline_store: Optional[object] = None,
        aggregate_cache: Optional[object] = None,
        progress: Optional[Callable[..., None]] = None,
    ) -> None:
        """``parallelism`` bounds how many independent crawls run at once
        (default ``os.cpu_count()``).  ``parallelism=1`` reproduces the
        historical strictly-sequential evaluation order exactly; any
        value produces bit-identical results, because only whole crawls
        (each owning its cookie jar) and pure per-log analyses fan out.

        ``store`` (a :class:`~repro.datastore.CrawlStore` or a path)
        persists every crawl and hydrates already-stored ones, making an
        interrupted study resumable at per-site granularity.
        ``store_shards`` (with a path) creates/opens an N-shard store.
        ``store_only=True`` is the ``repro report`` contract: analyses
        read exclusively from stored logs — streaming through datastore
        cursors where the analysis supports it (labels, ATS, cookies,
        HTTPS; see :meth:`porn_source`) — and a missing crawl raises
        :class:`~repro.datastore.MissingRunError` instead of touching a
        browser.

        ``baseline_store`` (a :class:`~repro.datastore.CrawlStore` or a
        path) enables delta crawls against a prior epoch's store: sites
        whose served content is provably unchanged splice their stored
        event slices instead of re-rendering (see
        :func:`~repro.datastore.delta_crawl`).  Results are
        byte-identical to a full crawl by construction; the baseline is
        only ever read.

        ``progress(event, **fields)`` observes every crawl the study
        runs (``run_started``/``site_started``/``site_finished``/
        ``run_finished`` — the hook the CLI ``--stats`` line and the
        measurement service's event streams are built on).  Per-site
        events fire inline for sequential crawls and on the thread
        backend; the fork backend tallies them in each worker and
        replays the merged counts after the run as
        ``progress(event, count=N, key=..., country=...)`` (see
        :class:`~repro.crawler.executor.CrawlExecutor`), so counting
        consumers like ``--stats`` work at any parallelism while
        streaming consumers should run with ``parallelism=1``.

        ``aggregate_cache`` (an
        :class:`~repro.datastore.AggregateStore`, a path, or ``True``
        for the store's default ``aggregates.sqlite`` sibling) turns on
        incremental map/merge analysis: per-site partials are served
        from the cache when the site's analysis content hash is
        unchanged and recomputed from the stored rows when it churned,
        producing byte-identical tables either way (see
        :mod:`repro.datastore.incremental`).  Requires a complete stored
        run; without a ``store`` the flag is rejected.
        """
        self.universe = universe
        self.vantage_points = vantage_points or VantagePointManager()
        self.home_country = home_country
        self.parallelism = max(1, int(parallelism or default_parallelism()))
        if isinstance(store, (str, Path)):
            from .datastore import CrawlStore
            store = CrawlStore(str(store), shards=store_shards)
        self.store = store
        self.store_only = store_only
        if isinstance(baseline_store, (str, Path)):
            from .datastore import CrawlStore
            baseline_store = CrawlStore(str(baseline_store))
        self.baseline_store = baseline_store
        if aggregate_cache:
            from .datastore import AggregateStore, aggregates_path
            if aggregate_cache is True:
                if self.store is None:
                    raise ValueError(
                        "aggregate_cache=True requires a store to sit next to"
                    )
                aggregate_cache = AggregateStore(
                    aggregates_path(self.store.path))
            elif isinstance(aggregate_cache, (str, Path)):
                aggregate_cache = AggregateStore(str(aggregate_cache))
        self.aggregate_cache = aggregate_cache or None
        #: Real per-analysis wall time, recorded by :meth:`run_all` /
        #: :meth:`prefetch_analyses` around each task thunk (the memoized
        #: accessors alone can't be timed from outside — under prefetch
        #: the work happens in the pool and later reads are cache hits).
        self.analysis_timings: Dict[str, float] = {}
        self.progress = progress
        if store_only and store is None:
            raise ValueError("store_only=True requires a store")
        self._cache: Dict[str, object] = {}
        self._cache_lock = threading.Lock()
        self._key_locks: Dict[str, threading.Lock] = {}

    @classmethod
    def build(
        cls,
        config: Optional[UniverseConfig] = None,
        *,
        parallelism: Optional[int] = None,
        store: Optional[object] = None,
    ) -> "Study":
        """Construct the universe and wrap it in a study."""
        return cls(build_universe(config or UniverseConfig()),
                   parallelism=parallelism, store=store)

    def _memo(self, key: str, factory):
        """Thread-safe memoization: one factory run per key, ever.

        Concurrent table calls may race on the cache now that crawls fan
        out; a per-key lock serializes the factory while leaving
        unrelated keys free to compute in parallel.
        """
        with self._cache_lock:
            if key in self._cache:
                return self._cache[key]
            key_lock = self._key_locks.setdefault(key, threading.Lock())
        with key_lock:
            with self._cache_lock:
                if key in self._cache:
                    return self._cache[key]
            value = factory()
            with self._cache_lock:
                self._cache[key] = value
                self._key_locks.pop(key, None)
            return value

    def _memo_seed(self, key: str, value) -> None:
        """Store a precomputed value unless the key is already cached."""
        with self._cache_lock:
            self._cache.setdefault(key, value)

    def _memoized(self, key: str) -> bool:
        with self._cache_lock:
            return key in self._cache

    # ------------------------------------------------------------------
    # Section 3: corpus
    # ------------------------------------------------------------------

    def corpus(self) -> Tuple[CandidateSet, SanitizedCorpus]:
        def build() -> Tuple[CandidateSet, SanitizedCorpus]:
            vantage = self.vantage_points.point(self.home_country)
            if self.aggregate_cache is not None:
                # Sanitize verdicts are per-candidate pure functions of
                # served content: serve them from the aggregate cache
                # and only re-visit candidates whose hash churned.
                from .core.corpus import compile_candidates
                from .datastore import cached_sanitize

                candidates = compile_candidates(self.universe)
                sanitized = cached_sanitize(
                    self.universe, candidates.domains, vantage,
                    self.aggregate_cache,
                )
                return candidates, sanitized
            return build_corpus(self.universe, vantage)

        return self._memo("corpus", build)

    def corpus_domains(self) -> List[str]:
        return self.corpus()[1].corpus

    def popularity(self) -> PopularityReport:
        return self._memo(
            "popularity",
            lambda: analyze_popularity(self.universe, self.corpus_domains()),
        )

    def top_sites(self, count: int = 50) -> List[str]:
        """The most popular *crawlable* sites by best 2018 rank (§7.2)."""
        report = self.crawled_popularity()
        ordered = [site.domain for site in report.sorted_by_best()]
        return ordered[:count]

    # ------------------------------------------------------------------
    # Crawls
    # ------------------------------------------------------------------

    #: Datastore run kinds shared by the sequential accessors and the
    #: executor specs, so both paths land on the same manifest rows.
    _PORN_KIND = "openwpm:porn"
    _REGULAR_KIND = "openwpm:regular"

    def _stored_crawl(self, country: str, kind: str,
                      domains: Sequence[str], *, keep_html: bool) -> CrawlLog:
        from .datastore import stored_crawl

        return stored_crawl(
            self.store, self.universe, self.vantage_points.point(country),
            kind, domains, keep_html=keep_html,
            allow_crawl=not self.store_only,
            baseline=self.baseline_store,
            progress=self.progress,
        )

    def porn_log(self, country: Optional[str] = None) -> CrawlLog:
        country = country or self.home_country

        def crawl() -> CrawlLog:
            # HTML is kept for every country so one crawl serves both the
            # geography analyses and the banner detector (§6 + §7.1 share
            # the crawl instead of re-crawling with a throwaway session).
            if self.store is not None:
                return self._stored_crawl(country, self._PORN_KIND,
                                          self.corpus_domains(),
                                          keep_html=True)
            crawler = OpenWPMCrawler(
                self.universe, self.vantage_points.point(country),
                keep_html=True,
            )
            return crawler.crawl(self.corpus_domains(),
                                 progress=self.progress)

        return self._memo(f"porn_log:{country}", crawl)

    def regular_log(self) -> CrawlLog:
        def crawl() -> CrawlLog:
            if self.store is not None:
                return self._stored_crawl(
                    self.home_country, self._REGULAR_KIND,
                    self.universe.reference_regular_corpus(), keep_html=False,
                )
            crawler = OpenWPMCrawler(
                self.universe, self.vantage_points.point(self.home_country),
                keep_html=False,
            )
            return crawler.crawl(self.universe.reference_regular_corpus(),
                                 progress=self.progress)

        return self._memo("regular_log", crawl)

    # -- streaming log sources ------------------------------------------

    def _stored_view(self, country: str, kind: str,
                     domains: Sequence[str], *, keep_html: bool):
        from .datastore import MissingRunError

        state = self.store.find_run(
            self.universe.config, self.vantage_points.point(country), kind,
            domains, keep_html=keep_html,
        )
        if state is None or not state.complete:
            held = len(state.completed) if state is not None else 0
            raise MissingRunError(
                f"store {self.store.path} holds {held}/{len(domains)} sites "
                f"for {kind} from {country}; re-run with --store to "
                "complete it"
            )
        return self.store.log_view(state.run_id)

    def porn_source(self, country: Optional[str] = None):
        """The porn crawl for analyses that only *iterate* events.

        In store-only mode this is a
        :class:`~repro.datastore.StoredLogView` — every attribute access
        is a fresh bounded-memory datastore cursor, so the labeling/ATS/
        cookie/HTTPS pipelines never hydrate the run (at most one
        ``fetchmany`` batch per shard is resident).  Otherwise it is the
        memoized :meth:`porn_log`, making both paths byte-identical by
        construction: the cursors yield the same records in the same
        order the hydrated log holds them.
        """
        country = country or self.home_country
        if not self.store_only:
            return self.porn_log(country)
        with self._cache_lock:
            hydrated = self._cache.get(f"porn_log:{country}")
        if hydrated is not None:
            # Another analysis already paid for full hydration — reuse it
            # rather than re-scanning the store.
            return hydrated
        return self._memo(
            f"porn_view:{country}",
            lambda: self._stored_view(country, self._PORN_KIND,
                                      self.corpus_domains(), keep_html=True),
        )

    def regular_source(self):
        """Streaming counterpart of :meth:`regular_log` (see
        :meth:`porn_source`)."""
        if not self.store_only:
            return self.regular_log()
        return self._memo(
            "regular_view",
            lambda: self._stored_view(
                self.home_country, self._REGULAR_KIND,
                self.universe.reference_regular_corpus(), keep_html=False,
            ),
        )

    @staticmethod
    def _successful_visit_count(source) -> int:
        """Successful-visit count without forcing a hydrated visit list."""
        counter = getattr(source, "successful_visit_count", None)
        if counter is not None:
            return counter()
        return len(source.successful_visits())

    # -- parallel crawl fan-out -----------------------------------------

    _REGULAR_KEY = "regular"

    def _executor(self) -> CrawlExecutor:
        return CrawlExecutor(
            self.universe,
            self.vantage_points,
            parallelism=self.parallelism,
            classifier=self._cache.get("ats_classifier"),
            store=self.store,
            baseline=self.baseline_store,
            progress=self.progress,
        )

    def _porn_spec(self, country: str,
                   analyses: Sequence[str] = ()) -> CrawlSpec:
        return CrawlSpec(
            key=f"porn:{country}",
            country=country,
            domains=tuple(self.corpus_domains()),
            keep_html=True,
            analyses=tuple(analyses),
            store_kind=self._PORN_KIND,
        )

    def _regular_spec(self, analyses: Sequence[str] = ()) -> CrawlSpec:
        return CrawlSpec(
            key=self._REGULAR_KEY,
            country=self.home_country,
            domains=tuple(self.universe.reference_regular_corpus()),
            keep_html=False,
            analyses=tuple(analyses),
            store_kind=self._REGULAR_KIND,
        )

    def _seed_outcome(self, outcome: CrawlOutcome) -> None:
        """Adopt a worker's results into the memo (first write wins)."""
        if outcome.key == self._REGULAR_KEY:
            self._memo_seed("regular_log", outcome.log)
            if outcome.labels is not None:
                self._memo_seed("regular_labels", outcome.labels)
            if outcome.ats is not None:
                self._memo_seed("regular_ats", outcome.ats)
            return
        country = outcome.country
        self._memo_seed(f"porn_log:{country}", outcome.log)
        if outcome.labels is not None:
            self._memo_seed(f"porn_labels:{country}", outcome.labels)
        if outcome.ats is not None:
            self._memo_seed(f"porn_ats:{country}", outcome.ats)
        if outcome.malware is not None:
            self._memo_seed(f"malware:{country}", outcome.malware)

    def prefetch_crawls(
        self,
        countries: Optional[Sequence[str]] = None,
        *,
        include_regular: bool = True,
        analyses: Sequence[str] = (ANALYSIS_LABELS, ANALYSIS_ATS,
                                   ANALYSIS_MALWARE),
    ) -> None:
        """Run every not-yet-cached crawl ``parallelism``-wide.

        Results land in the memo exactly as if the corresponding
        sequential accessors had produced them (they are bit-identical:
        each crawl is internally sequential and owns its cookie jar).
        With ``parallelism=1`` this is a no-op and the lazy sequential
        path runs untouched.
        """
        if self.parallelism <= 1:
            return
        if self.store_only:
            # Hydration from the store is pure I/O; the sequential
            # accessors handle it (and raise MissingRunError with a
            # useful message when a crawl is absent).
            return
        specs: List[CrawlSpec] = []
        for country in countries or self.vantage_points.country_codes:
            if not self._memoized(f"porn_log:{country}"):
                specs.append(self._porn_spec(country, analyses))
        if include_regular and not self._memoized("regular_log"):
            regular_analyses = tuple(
                a for a in analyses if a in (ANALYSIS_LABELS, ANALYSIS_ATS)
            )
            specs.append(self._regular_spec(regular_analyses))
        if len(specs) < 2:
            return
        if any(ANALYSIS_ATS in spec.analyses for spec in specs):
            self.ats_classifier()  # build once, pre-fork, shared by workers
        for outcome in self._executor().run(specs):
            self._seed_outcome(outcome)

    # -- parallel analysis fan-out --------------------------------------

    #: Table 8 renders the home-jurisdiction banner report against the
    #: US one, so both crawls/analyses are part of the full-study set.
    _BANNER_COUNTRIES = ("ES", "US")

    def _analysis_tasks(
        self, *, geo: bool = False,
        countries: Optional[Sequence[str]] = None,
    ) -> List[Tuple[str, Callable[[], object]]]:
        """``(name, thunk)`` for every analysis the full study renders.

        The list is ordered exactly as the lazy renderer
        (``repro study``) pulls results, so evaluating it front-to-back
        with ``parallelism=1`` reproduces today's serial evaluation
        order; each thunk is also independently safe to run from a
        worker thread because every shared intermediate sits behind a
        :meth:`_memo` key lock.
        """
        tasks: List[Tuple[str, Callable[[], object]]] = [
            ("popularity", self.popularity),
            ("owners", self.owners),
            ("table2", self.table2),
            ("table3", self.table3),
            ("crawled_popularity", self.crawled_popularity),
            ("porn_attribution", self.porn_attribution),
            ("regular_attribution", self.regular_attribution),
            ("cookie_stats", self.cookie_stats),
            ("cookie_sync", self.cookie_sync),
            ("fingerprinting", self.fingerprinting),
            ("https", self.https_report),
            ("malware", self.malware),
        ]
        if geo:
            geo_countries = tuple(countries
                                  or self.vantage_points.country_codes)
            tasks.append(
                ("geography", lambda: self.geography(geo_countries))
            )
        for country in self._BANNER_COUNTRIES:
            tasks.append(
                (f"banners:{country}",
                 lambda c=country: self.banners(c))
            )
        return tasks

    def prefetch_analyses(
        self,
        countries: Optional[Sequence[str]] = None,
        *,
        geo: bool = False,
    ) -> None:
        """Fan the independent analyses across a thread pool.

        Crawls fan out first through :meth:`prefetch_crawls` (process
        pool); the remaining analyses — per-country banner reports,
        per-log labels/ATS, and the table builders — are pure functions
        of memoized inputs and fan out ``parallelism`` threads wide.
        Shared intermediates (a log, the ATS classifier, the Selenium
        inspection pass) are computed exactly once regardless of
        scheduling: every dependency is resolved through
        :meth:`_memo`, whose per-key locks serialize the first
        computation and hand every other thread the same object.
        Results are bit-identical to the sequential path because each
        memo value is a pure function of the universe and the crawl
        logs — scheduling changes who computes a value first, never the
        value.  With ``parallelism=1`` this is a no-op.
        """
        if self.parallelism <= 1:
            return
        crawl_countries = [self.home_country]
        for country in self._BANNER_COUNTRIES:
            if country not in crawl_countries:
                crawl_countries.append(country)
        if geo:
            for country in (countries or self.vantage_points.country_codes):
                if country not in crawl_countries:
                    crawl_countries.append(country)
        self.prefetch_crawls(crawl_countries)
        tasks = self._analysis_tasks(geo=geo, countries=countries)
        with ThreadPoolExecutor(max_workers=self.parallelism) as pool:
            futures = [pool.submit(self._timed_task(name, thunk))
                       for name, thunk in tasks]
            for future in futures:
                future.result()  # re-raise the first failure in task order

    def run_all(
        self,
        countries: Optional[Sequence[str]] = None,
        *,
        geo: bool = False,
    ) -> None:
        """Evaluate everything the full study output needs.

        ``parallelism=1`` runs each analysis serially in exactly the
        order the lazy renderer would pull it; ``parallelism>1`` fans
        crawls across the process pool and analyses across a thread
        pool.  Either way the results land in the memo, so rendering
        afterwards is pure cache reads — byte-identical across
        parallelism settings.
        """
        if self.parallelism > 1:
            self.prefetch_analyses(countries, geo=geo)
            return
        for name, thunk in self._analysis_tasks(geo=geo, countries=countries):
            self._timed_task(name, thunk)()

    def _timed_task(self, name: str, thunk: Callable[[], object]):
        """Wrap a task thunk to record its real wall time.

        The timing happens where the work happens — inside the prefetch
        pool worker or the serial loop — so benchmark ``analysis:*``
        stages can report true per-analysis cost instead of the
        near-zero memo-hit reads they used to see at ``parallelism>1``.
        The recorded time includes waits on shared-intermediate memo
        locks (that wait *is* part of the task's wall time).
        """

        def run():
            start = time.perf_counter()
            try:
                return thunk()
            finally:
                self.analysis_timings[name] = time.perf_counter() - start

        return run

    def inspections(self) -> List[SiteInspection]:
        """Interaction-crawler pass over the whole corpus (home country).

        With a store attached the pass is persisted as a pickled
        artifact keyed like a run (config + vantage + crawler kind), so
        ``repro report`` can render the policy/business tables without
        re-running the interaction crawler.
        """

        def inspect() -> List[SiteInspection]:
            artifact_key = None
            if self.store is not None:
                import pickle

                from .datastore import MissingRunError, run_key

                artifact_key = run_key(
                    self.universe.config,
                    self.vantage_points.point(self.home_country),
                    "selenium:inspections",
                )
                payload = self.store.get_artifact(artifact_key)
                if payload is not None:
                    return pickle.loads(payload)
                if self.store_only:
                    raise MissingRunError(
                        f"store {self.store.path} holds no inspection pass; "
                        "re-run `repro study --store` to record it"
                    )
            crawler = SeleniumCrawler(
                self.universe, self.vantage_points.point(self.home_country)
            )
            results = [crawler.inspect(domain)
                       for domain in self.corpus_domains()]
            if artifact_key is not None:
                import pickle
                self.store.put_artifact(artifact_key,
                                        pickle.dumps(results, protocol=4))
            return results

        return self._memo("inspections", inspect)

    # -- incremental map/merge analysis ---------------------------------

    def _incremental_engine(self, country: str, kind: str):
        """The per-run map/merge engine (memoized per run)."""
        from .datastore import IncrementalRunAnalyzer

        def build():
            if kind == self._PORN_KIND:
                domains: Sequence[str] = self.corpus_domains()
                keep_html = True
            else:
                domains = self.universe.reference_regular_corpus()
                keep_html = False
            return IncrementalRunAnalyzer(
                self.store, self.universe, self.aggregate_cache,
                vantage=self.vantage_points.point(country),
                kind=kind, domains=domains, keep_html=keep_html,
                classifier=self.ats_classifier(),
                cert_lookup=self.universe.certificate_for,
            )

        return self._memo(f"incremental:{kind}:{country}", build)

    def _incremental_partials(self, country: str, kind: str,
                              names: Sequence[str]):
        """Per-site partials for ``names``, or ``None`` to fall back.

        ``None`` means incremental analysis is not configured (no
        aggregate cache / no store) and the caller should run the
        monolithic reference.  With a cache configured, the stored run
        is completed first when crawling is allowed; in ``store_only``
        mode a missing run raises :class:`~repro.datastore.
        MissingRunError` exactly like the monolithic stored path.
        """
        if self.aggregate_cache is None or self.store is None:
            return None
        if not self.store_only:
            # Route through the crawl memos so an absent run is crawled
            # (and persisted) before the engine binds to it.
            if kind == self._PORN_KIND:
                self.porn_log(country)
            else:
                self.regular_log()
        engine = self._incremental_engine(country, kind)
        return engine.partials(names)

    # ------------------------------------------------------------------
    # Section 4.2: labeling, classification, attribution
    # ------------------------------------------------------------------

    def porn_labels(self, country: Optional[str] = None) -> PartyLabels:
        country = country or self.home_country

        def build() -> PartyLabels:
            partials = self._incremental_partials(
                country, self._PORN_KIND, ("labels",))
            if partials is not None:
                return merge_labels(partials["labels"])
            return label_parties(self.porn_source(country),
                                 cert_lookup=self.universe.certificate_for)

        return self._memo(f"porn_labels:{country}", build)

    def regular_labels(self) -> PartyLabels:
        def build() -> PartyLabels:
            partials = self._incremental_partials(
                self.home_country, self._REGULAR_KIND, ("labels",))
            if partials is not None:
                return merge_labels(partials["labels"])
            return label_parties(self.regular_source(),
                                 cert_lookup=self.universe.certificate_for)

        return self._memo("regular_labels", build)

    def ats_classifier(self) -> ATSClassifier:
        return self._memo(
            "ats_classifier",
            lambda: ATSClassifier.from_texts(self.universe.easylist_text,
                                             self.universe.easyprivacy_text),
        )

    def porn_ats(self, country: Optional[str] = None) -> ATSResult:
        country = country or self.home_country

        def build() -> ATSResult:
            partials = self._incremental_partials(
                country, self._PORN_KIND, ("ats",))
            fqdns = self.porn_labels(country).all_third_party_fqdns
            if partials is not None:
                return merge_ats(partials["ats"], third_party_fqdns=fqdns)
            return self.ats_classifier().classify_log(
                self.porn_source(country), third_party_fqdns=fqdns)

        return self._memo(f"porn_ats:{country}", build)

    def regular_ats(self) -> ATSResult:
        def build() -> ATSResult:
            partials = self._incremental_partials(
                self.home_country, self._REGULAR_KIND, ("ats",))
            fqdns = self.regular_labels().all_third_party_fqdns
            if partials is not None:
                return merge_ats(partials["ats"], third_party_fqdns=fqdns)
            return self.ats_classifier().classify_log(
                self.regular_source(), third_party_fqdns=fqdns)

        return self._memo("regular_ats", build)

    def porn_attribution(self) -> AttributionResult:
        return self._memo(
            "porn_attribution",
            lambda: attribute_organizations(
                self.porn_labels().all_third_party_fqdns,
                disconnect=self.universe.disconnect,
                cert_lookup=self.universe.certificate_for,
                whois_lookup=self.universe.whois_organization,
            ),
        )

    def regular_attribution(self) -> AttributionResult:
        return self._memo(
            "regular_attribution",
            lambda: attribute_organizations(
                self.regular_labels().all_third_party_fqdns,
                disconnect=self.universe.disconnect,
                cert_lookup=self.universe.certificate_for,
                whois_lookup=self.universe.whois_organization,
            ),
        )

    # ------------------------------------------------------------------
    # Tables and figures
    # ------------------------------------------------------------------

    def table2(self) -> Table2:
        self.prefetch_crawls(countries=[self.home_country],
                             analyses=(ANALYSIS_LABELS, ANALYSIS_ATS))
        return self._memo(
            "table2",
            lambda: build_table2(
                porn_labels=self.porn_labels(),
                regular_labels=self.regular_labels(),
                porn_ats=self.porn_ats(),
                regular_ats=self.regular_ats(),
                porn_visited=self._successful_visit_count(self.porn_source()),
                regular_visited=self._successful_visit_count(
                    self.regular_source()),
            ),
        )

    def table3(self) -> Table3:
        return self._memo(
            "table3",
            lambda: build_table3(self.porn_labels(), self.crawled_popularity()),
        )

    def crawled_popularity(self) -> PopularityReport:
        """Popularity restricted to successfully crawled sites."""
        def build() -> PopularityReport:
            crawled = {v.site_domain
                       for v in self.porn_source().successful_visits()}
            full = self.popularity()
            return PopularityReport(
                [site for site in full.sites if site.domain in crawled]
            )

        return self._memo("crawled_popularity", build)

    def figure3(self, top_n: int = 19) -> List[OrganizationPrevalence]:
        return self._memo(
            f"figure3:{top_n}",
            lambda: build_figure3(
                porn_labels=self.porn_labels(),
                regular_labels=self.regular_labels(),
                porn_attribution=self.porn_attribution(),
                regular_attribution=self.regular_attribution(),
                porn_visited=self._successful_visit_count(self.porn_source()),
                regular_visited=self._successful_visit_count(
                    self.regular_source()),
                top_n=top_n,
            ),
        )

    # ------------------------------------------------------------------
    # Section 5: privacy risks
    # ------------------------------------------------------------------

    def cookie_stats(self) -> CookieStats:
        def build() -> CookieStats:
            regular_bases = {
                registrable_domain(f)
                for f in self.regular_labels().all_third_party_fqdns
            }
            ats_bases = {
                registrable_domain(f) for f in self.porn_ats().ats_fqdns
            } | self.porn_ats().ats_domains_relaxed
            partials = self._incremental_partials(
                self.home_country, self._PORN_KIND, ("cookies",))
            if partials is not None:
                return merge_cookies(partials["cookies"],
                                     ats_domains=ats_bases,
                                     regular_web_domains=regular_bases)
            return analyze_cookies(
                self.porn_source(),
                ats_domains=ats_bases,
                regular_web_domains=regular_bases,
            )

        return self._memo("cookie_stats", build)

    def cookie_sync(self) -> SyncReport:
        def build() -> SyncReport:
            partials = self._incremental_partials(
                self.home_country, self._PORN_KIND, ("sync",))
            if partials is not None:
                return merge_sync(partials["sync"])
            # Iteration-only detector: the streaming view keeps a
            # store-backed study from hydrating the whole log for it.
            return detect_cookie_sync(self.porn_source())

        return self._memo("cookie_sync", build)

    def fingerprinting(self) -> FingerprintingReport:
        def build() -> FingerprintingReport:
            classifier = self.ats_classifier()
            blocklisted = classifier.matches_url
            partials = self._incremental_partials(
                self.home_country, self._PORN_KIND, ("jsapi",))
            if partials is not None:
                return merge_fingerprinting(partials["jsapi"],
                                            url_blocklisted=blocklisted)
            return analyze_fingerprinting(
                self.porn_source().js_calls,
                url_blocklisted=blocklisted,
            )

        return self._memo("fingerprinting", build)

    def https_report(self) -> HTTPSReport:
        def build() -> HTTPSReport:
            partials = self._incremental_partials(
                self.home_country, self._PORN_KIND, ("https",))
            if partials is not None:
                return merge_https(partials["https"],
                                   popularity=self.crawled_popularity())
            return analyze_https(self.porn_source(), self.porn_labels(),
                                 self.crawled_popularity())

        return self._memo("https", build)

    def malware(self, country: Optional[str] = None) -> MalwareReport:
        country = country or self.home_country

        def build() -> MalwareReport:
            labels = self.porn_labels(country)

            def scanner(domain: str) -> int:
                return self.universe.scanner_hits(domain, country)

            partials = self._incremental_partials(
                country, self._PORN_KIND, ("visits", "jsapi"))
            if partials is not None:
                return merge_malware(partials["visits"], partials["jsapi"],
                                     labels=labels, scanner=scanner)
            return analyze_malware(self.porn_source(country), labels,
                                   scanner)

        return self._memo(f"malware:{country}", build)

    # ------------------------------------------------------------------
    # Section 6: geography
    # ------------------------------------------------------------------

    def geography(
        self, countries: Optional[Sequence[str]] = None
    ) -> GeoReport:
        countries = tuple(countries or self.vantage_points.country_codes)

        def build() -> GeoReport:
            # All per-country crawls (plus the regular control) are
            # independent; fan them out before the sequential assembly.
            self.prefetch_crawls(countries)
            observations = {}
            for country in countries:
                observations[country] = CountryObservation(
                    log=self.porn_log(country),
                    labels=self.porn_labels(country),
                    ats=self.porn_ats(country),
                    malware=self.malware(country),
                )
            return analyze_geography(
                observations,
                regular_web_fqdns=self.regular_labels().all_third_party_fqdns,
            )

        return self._memo(f"geo:{countries}", build)

    # ------------------------------------------------------------------
    # Section 7: compliance
    # ------------------------------------------------------------------

    def banners(self, country: Optional[str] = None) -> BannerReport:
        country = country or self.home_country

        def build() -> BannerReport:
            partials = self._incremental_partials(
                country, self._PORN_KIND, ("banners",))
            if partials is not None:
                return merge_banners(partials["banners"],
                                     corpus_size=len(self.corpus_domains()))
            # Routed through the shared crawl memo: geography and banner
            # analysis for the same country crawl exactly once (the
            # per-country logs keep HTML for the banner detector).
            log = self.porn_log(country)
            return analyze_banners(log, corpus_size=len(self.corpus_domains()))

        return self._memo(f"banners:{country}", build)

    def banner_reports(
        self, countries: Sequence[str]
    ) -> Dict[str, BannerReport]:
        """Banner reports for several countries, crawling N-wide."""
        self.prefetch_crawls(countries, include_regular=False,
                             analyses=())
        return {country: self.banners(country) for country in countries}

    def age_verification(
        self,
        *,
        top_n: int = 50,
        countries: Sequence[str] = ("US", "UK", "ES", "RU"),
    ) -> AgeVerificationReport:
        return self._memo(
            f"agegate:{top_n}:{tuple(countries)}",
            lambda: study_age_verification(
                self.universe,
                self.top_sites(top_n),
                countries=countries,
                vantage_points=self.vantage_points,
            ),
        )

    def policies(self) -> PolicyReport:
        def build() -> PolicyReport:
            collected = [
                CollectedPolicy(i.domain, i.policy.text, i.policy.status)
                for i in self.inspections()
                if i.reachable and i.policy.link_found
            ]
            observed = {
                page: {registrable_domain(f) for f in fqdns}
                for page, fqdns in self.porn_labels().third_party_direct.items()
            }
            return analyze_policies(
                collected,
                corpus_size=len(self.corpus_domains()),
                observed_third_parties=observed,
            )

        return self._memo("policies", build)

    def business_models(self) -> BusinessReport:
        return self._memo(
            "business", lambda: classify_business_models(self.inspections())
        )

    def owners(self) -> OwnerReport:
        def build() -> OwnerReport:
            policy_texts = {
                i.domain: i.policy.text
                for i in self.inspections()
                if i.reachable and i.policy.link_found and i.policy.fetched_ok
            }
            landing_html = {
                v.site_domain: v.html
                for v in self.porn_log().successful_visits()
                if v.html
            }
            return discover_owners(
                policy_texts=policy_texts,
                landing_html=landing_html,
                cert_lookup=self.universe.certificate_for,
            )

        return self._memo("owners", build)

    # ------------------------------------------------------------------
    # Section 10: future-work extensions
    # ------------------------------------------------------------------

    def adblock_comparison(self):
        """§10 extension: crawl with an EasyList blocker, compare tracking."""
        from .core.extensions.adblock_sim import compare_protection

        def build():
            return compare_protection(
                self.universe,
                self.vantage_points.point(self.home_country),
                self.corpus_domains(),
                baseline_log=self.porn_log(),
                classifier=self.ats_classifier(),
            )

        return self._memo("adblock", build)

    def subscription_tracking(self):
        """§10 extension: tracking by monetization model."""
        from .core.extensions.subscriptions import compare_tracking_by_model

        return self._memo(
            "subscription_tracking",
            lambda: compare_tracking_by_model(
                self.business_models(), self.porn_labels(), self.porn_log()
            ),
        )

    def cross_border(self):
        """§10 extension: identifier flows leaving the EU."""
        from .core.extensions.crossborder import analyze_cross_border

        return self._memo(
            "cross_border",
            lambda: analyze_cross_border(self.universe, self.porn_log(),
                                         self.porn_labels()),
        )

    def best_rank(self, domain: str) -> int:
        trajectory = self.universe.rank_history(domain)
        return trajectory.observed_best if trajectory else 0
