"""URL parsing and domain-name utilities.

The paper's analyses operate almost exclusively on fully qualified domain
names (FQDNs) and registrable domains (eTLD+1).  This module provides a
small, dependency-free URL model plus public-suffix handling for the
synthetic universe, which uses a fixed set of suffixes (see
:data:`PUBLIC_SUFFIXES`).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Iterable, Optional, Tuple

__all__ = [
    "URL",
    "URLError",
    "PUBLIC_SUFFIXES",
    "parse_url",
    "registrable_domain",
    "fqdn_of",
    "is_subdomain_of",
]

#: Public suffixes recognized in the synthetic universe.  Multi-label
#: suffixes must appear before their parent label would match (handled by
#: longest-match logic below).  This mirrors the small slice of the real
#: Public Suffix List that the paper's corpus touches (.com, .net, country
#: codes with second-level registrations like .co.uk and .com.ru).
PUBLIC_SUFFIXES = frozenset(
    {
        "com",
        "net",
        "org",
        "xxx",
        "info",
        "biz",
        "tv",
        "io",
        "me",
        "eu",
        "es",
        "ru",
        "in",
        "sg",
        "us",
        "uk",
        "nl",
        "de",
        "fr",
        "it",
        "pt",
        "ro",
        "party",
        "top",
        "pro",
        "co.uk",
        "org.uk",
        "com.ru",
        "co.in",
        "com.sg",
    }
)

_SCHEME_RE = re.compile(r"^([a-zA-Z][a-zA-Z0-9+.-]*):")
_HOST_RE = re.compile(r"^[a-z0-9]([a-z0-9-]*[a-z0-9])?$")

_DEFAULT_PORTS = {"http": 80, "https": 443, "ws": 80, "wss": 443}


class URLError(ValueError):
    """Raised when a URL cannot be parsed."""


@dataclass(frozen=True)
class URL:
    """An absolute URL.

    Attributes mirror the generic URI components.  ``host`` is always
    lower-case; ``path`` always starts with ``/``.
    """

    scheme: str
    host: str
    port: Optional[int] = None
    path: str = "/"
    query: str = ""
    fragment: str = ""

    def __post_init__(self) -> None:
        if self.scheme not in ("http", "https", "ws", "wss"):
            raise URLError(f"unsupported scheme: {self.scheme!r}")
        if not self.host:
            raise URLError("empty host")
        for label in self.host.split("."):
            if not _HOST_RE.match(label):
                raise URLError(f"invalid host label: {label!r} in {self.host!r}")
        if not self.path.startswith("/"):
            raise URLError(f"path must be absolute: {self.path!r}")

    # -- derived components -------------------------------------------------

    @property
    def fqdn(self) -> str:
        """The fully qualified domain name (the host)."""
        return self.host

    @property
    def registrable_domain(self) -> str:
        """The eTLD+1 of the host (e.g. ``a.b.example.co.uk`` -> ``example.co.uk``)."""
        return registrable_domain(self.host)

    @property
    def effective_port(self) -> int:
        """The explicit port, or the scheme default."""
        if self.port is not None:
            return self.port
        return _DEFAULT_PORTS[self.scheme]

    @property
    def origin(self) -> Tuple[str, str, int]:
        """The (scheme, host, port) origin triple for same-origin checks."""
        return (self.scheme, self.host, self.effective_port)

    @property
    def is_secure(self) -> bool:
        return self.scheme in ("https", "wss")

    # -- manipulation --------------------------------------------------------

    def with_scheme(self, scheme: str) -> "URL":
        return URL(scheme, self.host, self.port, self.path, self.query, self.fragment)

    def with_path(self, path: str, query: str = "") -> "URL":
        return URL(self.scheme, self.host, self.port, path, query, "")

    def with_query_param(self, key: str, value: str) -> "URL":
        """Return a copy with ``key=value`` appended to the query string."""
        pair = f"{key}={value}"
        query = f"{self.query}&{pair}" if self.query else pair
        return URL(self.scheme, self.host, self.port, self.path, query, self.fragment)

    def query_params(self) -> Dict[str, str]:
        """Parse the query string into a dict (last occurrence wins)."""
        params: Dict[str, str] = {}
        if not self.query:
            return params
        for part in self.query.split("&"):
            if not part:
                continue
            key, _, value = part.partition("=")
            params[key] = value
        return params

    def __str__(self) -> str:
        netloc = self.host if self.port is None else f"{self.host}:{self.port}"
        url = f"{self.scheme}://{netloc}{self.path}"
        if self.query:
            url += f"?{self.query}"
        if self.fragment:
            url += f"#{self.fragment}"
        return url


def parse_url(raw: str, *, default_scheme: str = "https") -> URL:
    """Parse an absolute URL string into a :class:`URL`.

    A missing scheme is filled in with ``default_scheme`` so that bare domains
    from site lists (``pornhub.com``) parse directly.

    Parses are memoized in a bounded cache (a crawl re-parses the same
    embed and tracker URLs hundreds of thousands of times); :class:`URL`
    is frozen, so sharing instances is safe.
    """
    return _parse_url_cached(raw, default_scheme)


@lru_cache(maxsize=16_384)
def _parse_url_cached(raw: str, default_scheme: str) -> URL:
    raw = raw.strip()
    if not raw:
        raise URLError("empty URL")
    match = _SCHEME_RE.match(raw)
    if match:
        scheme = match.group(1).lower()
        rest = raw[match.end():]
        if not rest.startswith("//"):
            raise URLError(f"malformed URL: {raw!r}")
        rest = rest[2:]
    else:
        scheme = default_scheme
        rest = raw[2:] if raw.startswith("//") else raw

    fragment = ""
    if "#" in rest:
        rest, fragment = rest.split("#", 1)
    query = ""
    if "?" in rest:
        rest, query = rest.split("?", 1)
    if "/" in rest:
        netloc, path = rest.split("/", 1)
        path = "/" + path
    else:
        netloc, path = rest, "/"

    port: Optional[int] = None
    host = netloc.lower()
    if ":" in netloc:
        host, port_text = netloc.rsplit(":", 1)
        host = host.lower()
        try:
            port = int(port_text)
        except ValueError as exc:
            raise URLError(f"invalid port in {raw!r}") from exc
        if not 0 < port < 65536:
            raise URLError(f"port out of range in {raw!r}")

    return URL(scheme, host, port, path, query, fragment)


# Public suffixes never exceed two labels, so for hosts with three or
# more labels the answer depends only on the trailing label pair.  That
# pair is the cache key: wildcard services mint one-shot *leading*
# labels, so keying on the tail keeps the key space at the (small)
# population of real registrable domains instead of leaking linearly
# with crawl size.
@lru_cache(maxsize=8_192)
def _suffix_of_tail(tail: str) -> Optional[str]:
    """Longest matching public suffix for a host ending in ``tail``
    (two labels) that has at least one more label in front."""
    if tail in PUBLIC_SUFFIXES:
        return tail
    label = tail.rsplit(".", 1)[1]
    if label in PUBLIC_SUFFIXES:
        return label
    return None


def _suffix_of(host: str) -> Optional[str]:
    """Return the longest matching public suffix of ``host``, if any."""
    labels = host.split(".")
    if len(labels) > 2:
        return _suffix_of_tail(labels[-2] + "." + labels[-1])
    # Longest match first: try 2-label suffixes, then 1-label ones.
    for take in (2, 1):
        if len(labels) > take:
            candidate = ".".join(labels[-take:])
            if candidate in PUBLIC_SUFFIXES:
                return candidate
    if host in PUBLIC_SUFFIXES:
        return host
    return None


# Wildcard-subdomain services mint one-shot hostnames, so this cache
# sees an unbounded stream of cold keys on large crawls; the hot set
# (real site and service domains) is far smaller than the cap.
@lru_cache(maxsize=65_536)
def registrable_domain(host: str) -> str:
    """Return the registrable domain (eTLD+1) for ``host``.

    If the host has no recognized public suffix, fall back to the last two
    labels, matching what practical measurement pipelines do for unknown
    TLDs.  A bare suffix is returned unchanged.

    Memoized: this is the single most-called function in the pipeline
    (280k+ calls per run) over a small population of hosts.
    """
    host = host.lower().rstrip(".")
    suffix = _suffix_of(host)
    if suffix is None:
        labels = host.split(".")
        return ".".join(labels[-2:]) if len(labels) >= 2 else host
    if suffix == host:
        return host
    prefix = host[: -(len(suffix) + 1)]
    owner = prefix.split(".")[-1]
    return f"{owner}.{suffix}"


def fqdn_of(url_or_host) -> str:
    """Normalize a URL object, URL string, or bare host to an FQDN."""
    if isinstance(url_or_host, URL):
        return url_or_host.host
    text = str(url_or_host)
    if "://" in text or text.startswith("//"):
        return parse_url(text).host
    return text.split("/", 1)[0].lower().rstrip(".")


def is_subdomain_of(host: str, domain: str) -> bool:
    """True if ``host`` equals ``domain`` or is a subdomain of it."""
    host = host.lower()
    domain = domain.lower()
    return host == domain or host.endswith("." + domain)


def group_by_registrable(hosts: Iterable[str]) -> Dict[str, list]:
    """Group FQDNs by their registrable domain."""
    groups: Dict[str, list] = {}
    for host in hosts:
        groups.setdefault(registrable_domain(host), []).append(host)
    return groups
