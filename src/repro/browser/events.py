"""Crawl log schema — our equivalent of OpenWPM's instrumentation tables.

Every analysis in :mod:`repro.core` consumes these records and nothing
else: the pipeline never touches generator ground truth, mirroring how the
paper's pipeline consumes OpenWPM's SQLite logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..js.api import JSCall

__all__ = ["RequestRecord", "CookieRecord", "PageVisit", "CrawlLog"]


@dataclass(slots=True)
class RequestRecord:
    """One HTTP(S) request observed during the crawl."""

    url: str
    fqdn: str
    scheme: str
    page_domain: str            # registrable domain of the visited site
    resource_type: str          # document|script|image|sub_frame|stylesheet|xhr
    initiator: Optional[str]    # URL of the script/frame that caused it
    referrer: Optional[str]
    seq: int = 0                # global event order within the crawl
    status: Optional[int] = None
    failed: bool = False
    error: str = ""
    redirect_location: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.failed and self.status is not None and \
            200 <= self.status < 400

    @property
    def is_redirect(self) -> bool:
        return self.redirect_location is not None


@dataclass(slots=True)
class CookieRecord:
    """One stored cookie observation (a parsed ``Set-Cookie``)."""

    page_domain: str     # site being visited when the cookie was stored
    set_by_host: str     # FQDN of the response that set it
    domain: str          # cookie scope domain
    name: str
    value: str
    session: bool
    secure: bool
    over_https: bool     # the setting response traveled over TLS
    seq: int = 0         # global event order within the crawl

    @property
    def value_length(self) -> int:
        return len(self.value)


@dataclass(slots=True)
class PageVisit:
    """One landing-page visit."""

    site_domain: str
    url: str
    success: bool
    status: Optional[int] = None
    failure_reason: str = ""
    html: str = ""
    https: bool = False


@dataclass
class CrawlLog:
    """Everything one crawl produced from one vantage point."""

    country_code: str = "ES"
    client_ip: str = ""
    visits: List[PageVisit] = field(default_factory=list)
    requests: List[RequestRecord] = field(default_factory=list)
    cookies: List[CookieRecord] = field(default_factory=list)
    js_calls: List[JSCall] = field(default_factory=list)
    _seq: int = 0

    def next_seq(self) -> int:
        """Allocate the next global event sequence number."""
        self._seq += 1
        return self._seq

    def clear_events(self) -> None:
        """Drop the event lists but keep the sequence counter running.

        The trim-mode crawl path calls this once a site's slice is on
        disk, so in-memory growth stays bounded by one site.  Clearing
        is in-place (``del lst[:]``) because the live ``Browser`` holds
        aliases to these lists.
        """
        del self.visits[:]
        del self.requests[:]
        del self.cookies[:]
        del self.js_calls[:]

    def successful_visits(self) -> List[PageVisit]:
        return [visit for visit in self.visits if visit.success]

    def visits_by_domain(self) -> Dict[str, PageVisit]:
        return {visit.site_domain: visit for visit in self.visits}

    def requests_for(self, page_domain: str) -> List[RequestRecord]:
        return [r for r in self.requests if r.page_domain == page_domain]

    def merge(self, other: "CrawlLog") -> "CrawlLog":
        """Concatenate two logs (e.g. porn + regular corpus crawls).

        The second log's sequence numbers are shifted past the first's so
        the merged event order stays consistent.
        """
        merged = CrawlLog(self.country_code, self.client_ip)
        offset = self._seq
        merged.visits = self.visits + other.visits
        merged.requests = list(self.requests)
        merged.cookies = list(self.cookies)
        merged.js_calls = self.js_calls + other.js_calls
        for record in other.requests:
            shifted = RequestRecord(**{
                f: getattr(record, f) for f in record.__dataclass_fields__
            })
            shifted.seq = record.seq + offset
            merged.requests.append(shifted)
        for cookie in other.cookies:
            shifted_cookie = CookieRecord(**{
                f: getattr(cookie, f) for f in cookie.__dataclass_fields__
            })
            shifted_cookie.seq = cookie.seq + offset
            merged.cookies.append(shifted_cookie)
        merged._seq = offset + other._seq
        return merged
