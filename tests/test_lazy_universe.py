"""Lazy universe parity: packed-row minting is bit-identical to eager.

The streaming builder (``build_universe(..., lazy=True)``) runs every
globally-coupled RNG phase exactly as the eager builder does, then keeps
site specs as marshal-packed rows decoded on access instead of live
dataclasses.  These tests pin the contract that makes that safe to ship:
at every scale, the lazy universe is *indistinguishable* from the eager
one — spec for spec, policy text for policy text, certificate for
certificate, and (the end-to-end version) crawl log for crawl log, per
country, byte for byte.
"""

import pytest

from repro import UniverseConfig
from repro.crawler import OpenWPMCrawler, VantagePointManager
from repro.webgen import build_universe
from repro.webgen.lazyspecs import LazyCertificates, LazySpecMap

SEED = 20191021
#: Two scales so parity is established at more than one corpus
#: composition (populations appear/disappear with scale).
SCALES = (0.02, 0.04)


def _pair(scale):
    config = UniverseConfig(seed=SEED, scale=scale)
    eager = build_universe(config)
    lazy = build_universe(config, lazy=True)
    return eager, lazy


@pytest.fixture(scope="module", params=SCALES)
def universes(request):
    return _pair(request.param)


class TestSpecParity:
    def test_lazy_mode_changes_container_not_content(self, universes):
        eager, lazy = universes
        assert isinstance(eager.porn_sites, dict)
        assert isinstance(lazy.porn_sites, LazySpecMap)
        assert isinstance(lazy.certificates, LazyCertificates)

    def test_porn_specs_identical(self, universes):
        eager, lazy = universes
        assert list(lazy.porn_sites) == list(eager.porn_sites)
        assert dict(lazy.porn_sites.items()) == eager.porn_sites

    def test_regular_specs_identical(self, universes):
        eager, lazy = universes
        assert dict(lazy.regular_sites.items()) == eager.regular_sites

    def test_point_lookup_equals_iteration_decode(self, universes):
        """The LRU path and the streaming path mint the same spec."""
        _, lazy = universes
        domain = next(iter(lazy.porn_sites))
        via_lookup = lazy.porn_sites[domain]
        via_scan = next(spec for d, spec in lazy.porn_sites.items()
                        if d == domain)
        assert via_lookup == via_scan
        # Second lookup is served from the hot cache, same object.
        assert lazy.porn_sites[domain] is via_lookup

    def test_policy_texts_identical(self, universes):
        eager, lazy = universes
        assert set(lazy._policy_texts) == set(eager._policy_texts)
        for domain in lazy._policy_texts:
            assert lazy._policy_texts[domain] == eager._policy_texts[domain]

    def test_certificates_identical(self, universes):
        eager, lazy = universes
        assert set(lazy.certificates) == set(eager.certificates)
        for host in eager.certificates:
            assert lazy.certificates[host] == eager.certificates[host]

    def test_whois_and_dns_identical(self, universes):
        """The RNG phases *after* spec packing must stay in sequence.

        ``DNSResolver`` / ``WhoisRegistry`` define no ``__eq__``, so
        compare their record tables directly.
        """
        eager, lazy = universes
        assert vars(lazy.whois) == vars(eager.whois)
        assert lazy.dns._records == eager.dns._records
        assert lazy.dns._wildcards == eager.dns._wildcards


class TestCrawlParity:
    """End-to-end: a full crawl of the lazy universe is byte-identical.

    This subsumes landing HTML, cookies, redirects, JS calls — anything
    a spec field feeds into — and repeats per country because vantage
    changes which branches of the generators run.
    """

    COUNTRIES = ("ES", "US")

    @pytest.mark.parametrize("scale", SCALES)
    def test_per_country_crawl_logs_identical(self, scale):
        eager, lazy = _pair(scale)
        vantage_points = VantagePointManager()
        domains = sorted(
            domain for domain, site in eager.porn_sites.items()
            if site.responsive and not site.crawl_flaky
        )
        for country in self.COUNTRIES:
            vantage = vantage_points.point(country)
            eager_log = OpenWPMCrawler(eager, vantage).crawl(domains)
            lazy_log = OpenWPMCrawler(lazy, vantage).crawl(domains)
            assert lazy_log == eager_log, country
            assert lazy_log._seq == eager_log._seq

    def test_regular_crawl_identical(self):
        eager, lazy = _pair(SCALES[0])
        vantage = VantagePointManager().point("ES")
        domains = eager.reference_regular_corpus()
        assert lazy.reference_regular_corpus() == domains
        eager_log = OpenWPMCrawler(eager, vantage,
                                   keep_html=False).crawl(domains)
        lazy_log = OpenWPMCrawler(lazy, vantage,
                                  keep_html=False).crawl(domains)
        assert lazy_log == eager_log

    def test_bounded_fetch_cache_changes_nothing(self):
        """A tiny fetch cache (the memory-probe setting) is still exact."""
        config = UniverseConfig(seed=SEED, scale=SCALES[0])
        reference = build_universe(config)
        lazy = build_universe(config, lazy=True, fetch_cache_size=64)
        vantage = VantagePointManager().point("ES")
        domains = sorted(
            domain for domain, site in reference.porn_sites.items()
            if site.responsive and not site.crawl_flaky
        )
        assert OpenWPMCrawler(lazy, vantage).crawl(domains) == \
            OpenWPMCrawler(reference, vantage).crawl(domains)
