"""Ablation — the 6-character ID-cookie length cutoff (§5.1.1).

Sweeps the minimum value length and reports how many cookies qualify as
potential identifiers, plus the precision proxy: short preference cookies
(theme/lang/volume) that slip through at loose cutoffs.
"""

from repro.browser.events import CookieRecord

CUTOFFS = (1, 3, 6, 12, 24)

#: First-party preference cookies the generator plants (never identifiers).
_PREFERENCE_NAMES = {"theme", "lang", "vol"}


def test_ablation_cookie_filter(benchmark, study, reporter):
    cookies = study.porn_log().cookies

    def sweep():
        seen = set()
        unique = []
        for cookie in cookies:
            key = (cookie.page_domain, cookie.domain, cookie.name, cookie.value)
            if key not in seen:
                seen.add(key)
                unique.append(cookie)
        rows = []
        for cutoff in CUTOFFS:
            qualifying = [c for c in unique
                          if not c.session and len(c.value) >= cutoff]
            leaked = sum(1 for c in qualifying
                         if c.name in _PREFERENCE_NAMES)
            rows.append((cutoff, len(qualifying), leaked))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    reporter.text("min-length  id-cookies  preference-cookies-leaked")
    for cutoff, count, leaked in rows:
        reporter.text(f"{cutoff:>10}  {count:>10}  {leaked:>25}")

    by_cutoff = {row[0]: row for row in rows}
    # Monotone: stricter cutoffs keep fewer cookies.
    counts = [by_cutoff[c][1] for c in CUTOFFS]
    assert counts == sorted(counts, reverse=True)
    # The paper's cutoff (6) filters every preference cookie while keeping
    # the identifier population nearly intact.
    assert by_cutoff[6][2] == 0
    assert by_cutoff[1][2] > 0
    assert by_cutoff[6][1] > 0.9 * by_cutoff[6][1]
    # Pushing the cutoff to 24+ begins discarding genuine identifiers.
    assert by_cutoff[24][1] <= by_cutoff[6][1]
