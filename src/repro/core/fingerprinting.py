"""Sections 5.1.3-5.1.4 / Table 5 — fingerprinting and WebRTC detection.

Three detectors over the instrumented JS-call log:

* the strict Englehardt-Narayanan canvas criteria (which, as in the
  paper, match **zero** scripts here — the ecosystem's scripts all touch
  ``save``/``restore`` or skip a criterion);
* the paper's stricter replacement rule: a script that sets the ``font``
  property and calls ``measureText`` on the *same text* at least 50 times
  is counted as canvas fingerprinting;
* font-enumeration fingerprinting: at least 50 *distinct* fonts probed
  (the ``online-metrix.net`` pattern);
* WebRTC usage (potential tracking; §5.1.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..js.api import API, JSCall, calls_by_script
from ..net.url import URLError, parse_url, registrable_domain

__all__ = [
    "ScriptClassification",
    "FingerprintingReport",
    "passes_englehardt_canvas",
    "is_canvas_fingerprinting",
    "is_font_enumeration",
    "analyze_fingerprinting",
    "MEASURE_TEXT_THRESHOLD",
    "FONT_ENUMERATION_THRESHOLD",
]

MEASURE_TEXT_THRESHOLD = 50
FONT_ENUMERATION_THRESHOLD = 50

_MIN_CANVAS_SIDE = 16
_MIN_READ_AREA = 320
_MIN_TEXT_CHARS = 10
_EXCLUDED_APIS = (API.CONTEXT_SAVE, API.CONTEXT_RESTORE, API.ADD_EVENT_LISTENER)


def passes_englehardt_canvas(calls: List[JSCall]) -> bool:
    """The strict Englehardt-Narayanan canvas-fingerprinting criteria.

    (1) canvas at least 16px in both dimensions; (2) at least two fill
    colors or text with more than 10 distinct characters; (3) pixels read
    back via ``toDataURL`` or a ``getImageData`` covering at least 320px;
    (4) no ``save``/``restore``/``addEventListener`` on the context.
    """
    creates = [c for c in calls if c.api == API.CANVAS_CREATE]
    if not any(
        c.arg("width", 0) >= _MIN_CANVAS_SIDE and
        c.arg("height", 0) >= _MIN_CANVAS_SIDE
        for c in creates
    ):
        return False

    colors = {c.arg("color_index") for c in calls
              if c.api == API.CONTEXT_FILL_STYLE}
    texts = [c.arg("text", "") for c in calls if c.api == API.CONTEXT_FILL_TEXT]
    distinct_chars = max((len(set(text)) for text in texts), default=0)
    if len(colors) < 2 and distinct_chars <= _MIN_TEXT_CHARS:
        return False

    reads_back = any(c.api == API.CANVAS_TO_DATA_URL for c in calls) or any(
        c.api == API.CONTEXT_GET_IMAGE_DATA and c.arg("area", 0) >= _MIN_READ_AREA
        for c in calls
    )
    if not reads_back:
        return False

    if any(c.api in _EXCLUDED_APIS for c in calls):
        return False
    return True


def is_canvas_fingerprinting(calls: List[JSCall]) -> bool:
    """The paper's replacement rule (§5.1.3).

    The script must set the canvas ``font`` property and call
    ``measureText`` on the same text at least 50 times.
    """
    if not any(c.api == API.CONTEXT_SET_FONT for c in calls):
        return False
    per_text: Dict[str, int] = {}
    for call in calls:
        if call.api == API.CONTEXT_MEASURE_TEXT:
            text = call.arg("text", "")
            per_text[text] = per_text.get(text, 0) + 1
    return max(per_text.values(), default=0) >= MEASURE_TEXT_THRESHOLD


def is_font_enumeration(calls: List[JSCall]) -> bool:
    """Classic font fingerprinting: many distinct fonts probed."""
    fonts = {c.arg("font_index") for c in calls if c.api == API.CONTEXT_SET_FONT}
    measures = any(c.api == API.CONTEXT_MEASURE_TEXT for c in calls)
    return measures and len(fonts) >= FONT_ENUMERATION_THRESHOLD


def uses_webrtc(calls: List[JSCall]) -> bool:
    return any(
        c.api in (API.RTC_PEER_CONNECTION, API.RTC_ICE_CANDIDATE) for c in calls
    )


@dataclass(frozen=True)
class ScriptClassification:
    """Per-script verdicts."""

    script_url: str
    sites: Tuple[str, ...]
    englehardt_canvas: bool
    canvas_fingerprinting: bool
    font_enumeration: bool
    webrtc: bool
    blocklisted: bool

    @property
    def domain(self) -> str:
        try:
            return registrable_domain(parse_url(self.script_url).host)
        except URLError:
            return ""


@dataclass
class FingerprintingReport:
    """Everything §5.1.3-5.1.4 and Table 5 report."""

    scripts: List[ScriptClassification] = field(default_factory=list)

    def _select(self, predicate) -> List[ScriptClassification]:
        return [script for script in self.scripts if predicate(script)]

    @property
    def englehardt_scripts(self) -> List[ScriptClassification]:
        return self._select(lambda s: s.englehardt_canvas)

    @property
    def canvas_scripts(self) -> List[ScriptClassification]:
        return self._select(lambda s: s.canvas_fingerprinting)

    @property
    def font_enumeration_scripts(self) -> List[ScriptClassification]:
        return self._select(lambda s: s.font_enumeration)

    @property
    def webrtc_scripts(self) -> List[ScriptClassification]:
        return self._select(lambda s: s.webrtc)

    @property
    def canvas_sites(self) -> Set[str]:
        sites: Set[str] = set()
        for script in self.canvas_scripts:
            sites.update(script.sites)
        return sites

    @property
    def webrtc_sites(self) -> Set[str]:
        sites: Set[str] = set()
        for script in self.webrtc_scripts:
            sites.update(script.sites)
        return sites

    def canvas_third_party_scripts(self) -> List[ScriptClassification]:
        return [
            script for script in self.canvas_scripts
            if not any(script.domain == registrable_domain(site)
                       for site in script.sites)
        ]

    def canvas_services(self) -> Set[str]:
        """Third-party registrable domains delivering canvas-FP scripts."""
        return {s.domain for s in self.canvas_third_party_scripts()}

    def unlisted_canvas_fraction(self) -> float:
        """Fraction of canvas-FP scripts not matched by the blocklists."""
        scripts = self.canvas_scripts
        if not scripts:
            return 0.0
        return sum(1 for s in scripts if not s.blocklisted) / len(scripts)

    def per_service_table(
        self, presence: Callable[[str], int], *, top_n: int = 10
    ) -> List[Tuple[str, int, int, int]]:
        """Table 5 rows: (domain, presence sites, canvas scripts, webrtc
        scripts), ranked by presence.  ``presence`` maps a registrable
        domain to the number of porn sites embedding it.
        """
        domains: Set[str] = set()
        for script in self.scripts:
            if script.canvas_fingerprinting or script.webrtc or \
                    script.font_enumeration:
                domains.add(script.domain)
        rows = []
        for domain in domains:
            canvas = sum(1 for s in self.canvas_scripts if s.domain == domain)
            webrtc = sum(1 for s in self.webrtc_scripts if s.domain == domain)
            rows.append((domain, presence(domain), canvas, webrtc))
        # Domain name breaks presence ties: the ranking must not depend
        # on set iteration order (string hashing varies per process).
        rows.sort(key=lambda row: (-row[1], row[0]))
        return rows[:top_n]


def analyze_fingerprinting(
    js_calls: List[JSCall],
    *,
    url_blocklisted: Optional[Callable[[str], bool]] = None,
) -> FingerprintingReport:
    """Classify every script observed in the crawl."""
    report = FingerprintingReport()
    for script_url, calls in calls_by_script(js_calls).items():
        sites = tuple(sorted({call.document_host for call in calls}))
        blocklisted = url_blocklisted(script_url) if url_blocklisted else False
        # A script runs once per page; detectors must judge each execution
        # context separately (pooling calls across sites would let a
        # 20-measurement script on three sites fake a 60-measurement one).
        per_site = [
            [call for call in calls if call.document_host == site]
            for site in sites
        ]
        report.scripts.append(
            ScriptClassification(
                script_url=script_url,
                sites=sites,
                englehardt_canvas=any(
                    passes_englehardt_canvas(site_calls)
                    for site_calls in per_site
                ),
                canvas_fingerprinting=any(
                    is_canvas_fingerprinting(site_calls)
                    for site_calls in per_site
                ),
                font_enumeration=any(
                    is_font_enumeration(site_calls) for site_calls in per_site
                ),
                webrtc=uses_webrtc(calls),
                blocklisted=blocklisted,
            )
        )
    return report
