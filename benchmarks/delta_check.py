"""``make delta-check``: correctness + speedup gate for delta crawls.

Runs the delta probe (see ``test_perf_pipeline.run_delta_probe``) in a
fresh subprocess: crawl the seed epoch into a baseline store, evolve the
universe one epoch (default 5% content churn, so well under 10% of
sites change), then crawl epoch 1 twice in streaming mode — once as a
delta crawl splicing provably-unchanged sites out of the baseline, once
as a full re-crawl.  FAILS if any of:

* the two epoch-1 stores are not **byte-identical** (every event row of
  every run, positions included);
* any rendered section diverges between a store-only study over the
  delta store and one over the full store — every table/figure the
  stores can support is rendered from each and diffed byte-for-byte;
* the delta-vs-full **speedup** is below the floor (default 3.0x — the
  regime the splice fast path exists for).

The section set covers everything a single-vantage porn + regular crawl
feeds (Tables 2-6, Figures 3-4, the malware rollup); Tables 1/7/8 need
the inspection pass or extra vantage points the probe doesn't run.

Configuration (environment):

* ``REPRO_DELTA_CHECK_SCALE`` — probe scale, default ``0.2``.
* ``REPRO_DELTA_CHECK_CHURN`` — per-epoch content churn, default ``0.05``.
* ``REPRO_DELTA_CHECK_SPEEDUP`` — speedup floor, default ``3.0``.

Exit status 0 on pass, 1 on any violation.
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
PROBE_SCRIPT = pathlib.Path(__file__).resolve().parent / "test_perf_pipeline.py"

DEFAULT_SCALE = 0.2
DEFAULT_CHURN = 0.05
DEFAULT_SPEEDUP = 3.0

#: Sections renderable from the probe's porn(ES) + regular runs alone.
SECTIONS = ("corpus", "table2", "table3", "figure3", "table4", "figure4",
            "table5", "table6", "malware")


def _run_probe(scale: float, churn: float, store_dir: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep \
        + env.get("PYTHONPATH", "")
    env["REPRO_PERF_DELTA_CHURN"] = str(churn)
    env["REPRO_PERF_DELTA_STORE_DIR"] = store_dir
    command = [sys.executable, str(PROBE_SCRIPT), "--scale", str(scale),
               "--delta-probe", "--json"]
    result = subprocess.run(command, env=env, capture_output=True, text=True)
    if result.returncode != 0:
        raise RuntimeError(
            f"delta-probe child at scale {scale} failed:\n{result.stderr}"
        )
    return json.loads(result.stdout)


def _render_sections(store_path: str) -> dict:
    """Every supported section rendered from a store-only study."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro import Study
    from repro.datastore import CrawlStore
    from repro.reporting import render_section
    from repro.webgen.builder import build_universe

    store = CrawlStore(store_path)
    config = store.stored_config()
    study = Study(build_universe(config, lazy=True), store=store,
                  store_only=True)
    return {name: render_section(study, config.scale, name)
            for name in SECTIONS}


def main() -> int:
    scale = float(os.environ.get("REPRO_DELTA_CHECK_SCALE",
                                 str(DEFAULT_SCALE)))
    churn = float(os.environ.get("REPRO_DELTA_CHECK_CHURN",
                                 str(DEFAULT_CHURN)))
    floor = float(os.environ.get("REPRO_DELTA_CHECK_SPEEDUP",
                                 str(DEFAULT_SPEEDUP)))

    store_dir = tempfile.mkdtemp(prefix="repro-delta-check-")
    try:
        print(f"delta-check: scale {scale}, churn {churn}, "
              f"speedup floor {floor}x")
        probe = _run_probe(scale, churn, store_dir)
        changed = probe["crawled"] / probe["sites"] if probe["sites"] else 0.0
        print(f"  {probe['spliced']}/{probe['sites']} sites spliced "
              f"({changed:.1%} re-crawled), divergence points "
              f"{ {kind: stats.get('divergence_index') for kind, stats in probe['runs'].items()} }")
        print(f"  full {probe['full_seconds']:.2f}s vs delta "
              f"{probe['delta_seconds']:.2f}s -> {probe['speedup']}x")

        failed = False
        if not probe["stores_identical"]:
            print("FAIL: delta store is not byte-identical to the full "
                  "re-crawl store", file=sys.stderr)
            failed = True
        if probe["spliced"] == 0:
            print("FAIL: delta crawl spliced nothing", file=sys.stderr)
            failed = True
        if probe["speedup"] is None or probe["speedup"] < floor:
            print(f"FAIL: delta speedup {probe['speedup']}x is below the "
                  f"{floor}x floor", file=sys.stderr)
            failed = True

        delta_sections = _render_sections(
            os.path.join(store_dir, "epoch1-delta"))
        full_sections = _render_sections(
            os.path.join(store_dir, "epoch1-full"))
        for name in SECTIONS:
            if delta_sections[name] == full_sections[name]:
                print(f"  {name}: identical")
            else:
                print(f"FAIL: section {name} diverges between the delta "
                      "and full stores", file=sys.stderr)
                failed = True

        if failed:
            return 1
        print("delta-check: OK")
        return 0
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
