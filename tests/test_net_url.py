"""Unit tests for URL parsing and registrable-domain logic."""

import pytest

from repro.net.url import (
    URL,
    URLError,
    fqdn_of,
    is_subdomain_of,
    parse_url,
    registrable_domain,
)
from repro.net.url import group_by_registrable


class TestParseUrl:
    def test_basic_https(self):
        url = parse_url("https://example.com/path?a=1#frag")
        assert url.scheme == "https"
        assert url.host == "example.com"
        assert url.path == "/path"
        assert url.query == "a=1"
        assert url.fragment == "frag"

    def test_default_scheme_for_bare_domain(self):
        url = parse_url("pornhub.com")
        assert url.scheme == "https"
        assert url.host == "pornhub.com"
        assert url.path == "/"

    def test_http_scheme_preserved(self):
        assert parse_url("http://example.com/").scheme == "http"

    def test_host_lowercased(self):
        assert parse_url("https://ExAmPle.COM/").host == "example.com"

    def test_explicit_port(self):
        url = parse_url("https://example.com:8443/x")
        assert url.port == 8443
        assert url.effective_port == 8443

    def test_default_ports(self):
        assert parse_url("https://a.com/").effective_port == 443
        assert parse_url("http://a.com/").effective_port == 80

    def test_invalid_port_rejected(self):
        with pytest.raises(URLError):
            parse_url("https://example.com:abc/")
        with pytest.raises(URLError):
            parse_url("https://example.com:70000/")

    def test_empty_url_rejected(self):
        with pytest.raises(URLError):
            parse_url("")

    def test_unsupported_scheme_rejected(self):
        with pytest.raises(URLError):
            parse_url("ftp://example.com/")

    def test_wss_supported_for_miner_pools(self):
        url = parse_url("wss://pool.coinhive.com/ws")
        assert url.scheme == "wss"
        assert url.is_secure

    def test_invalid_host_label(self):
        with pytest.raises(URLError):
            parse_url("https://bad_host.com/")

    def test_str_round_trip(self):
        text = "https://a.example.com/p/q?x=1&y=2"
        assert str(parse_url(text)) == text

    def test_query_params(self):
        params = parse_url("https://a.com/s?uid=abc&src=x.com").query_params()
        assert params == {"uid": "abc", "src": "x.com"}

    def test_with_query_param(self):
        url = parse_url("https://a.com/px").with_query_param("cb", "123")
        assert url.query == "cb=123"
        assert url.with_query_param("d", "4").query == "cb=123&d=4"


class TestRegistrableDomain:
    def test_plain_com(self):
        assert registrable_domain("www.example.com") == "example.com"

    def test_deep_subdomain(self):
        assert registrable_domain("a.b.c.example.net") == "example.net"

    def test_two_level_suffix(self):
        assert registrable_domain("news.bbc.co.uk") == "bbc.co.uk"

    def test_dynamic_cdn_host(self):
        assert registrable_domain("img100-589.xvideos.com") == "xvideos.com"

    def test_bare_domain_unchanged(self):
        assert registrable_domain("exoclick.com") == "exoclick.com"

    def test_unknown_tld_falls_back_to_two_labels(self):
        assert registrable_domain("a.b.example.weirdtld") == "example.weirdtld"

    def test_xxx_tld(self):
        assert registrable_domain("www.sexmex.xxx") == "sexmex.xxx"

    def test_party_tld(self):
        assert registrable_domain("cdn.xcvgdf.party") == "xcvgdf.party"


class TestHelpers:
    def test_fqdn_of_url_string(self):
        assert fqdn_of("https://a.b.com/x") == "a.b.com"

    def test_fqdn_of_bare_host(self):
        assert fqdn_of("A.B.COM") == "a.b.com"

    def test_is_subdomain_of(self):
        assert is_subdomain_of("ads.exoclick.com", "exoclick.com")
        assert is_subdomain_of("exoclick.com", "exoclick.com")
        assert not is_subdomain_of("notexoclick.com", "exoclick.com")

    def test_group_by_registrable(self):
        groups = group_by_registrable(
            ["a.x.com", "b.x.com", "c.y.net"]
        )
        assert set(groups["x.com"]) == {"a.x.com", "b.x.com"}
        assert groups["y.net"] == ["c.y.net"]

    def test_origin_triple(self):
        url = parse_url("https://a.com/x")
        assert url.origin == ("https", "a.com", 443)


class TestCachedParsingAgreement:
    """The lru_cache layers must be pure memoization: cached and uncached
    results agree on every input, including tricky multi-label suffixes."""

    TRICKY_HOSTS = [
        "a.b.example.co.uk",   # multi-label suffix, deep subdomain
        "example.co.uk",       # eTLD+1 exactly
        "co.uk",               # bare multi-label suffix
        "uk",                  # bare single-label suffix
        "cdn.x.com.ru",        # multi-label suffix with subdomain
        "x.com.ru",
        "video.ads.example.com",
        "example.com",
        "com",
        "tracker.example.unknowntld",   # unknown TLD fallback
        "unknowntld",                   # single unknown label
        "WWW.Example.CO.UK.",           # case + trailing dot normalization
        "a.co.in",
        "b.com.sg",
        "deep.sub.domain.example.party",
    ]

    def test_registrable_domain_cached_equals_uncached(self):
        from repro.net.url import _suffix_of_tail

        registrable_domain.cache_clear()
        _suffix_of_tail.cache_clear()
        for host in self.TRICKY_HOSTS:
            cached = registrable_domain(host)
            uncached = registrable_domain.__wrapped__(host)
            assert cached == uncached, host
            # A second call (guaranteed cache hit) still agrees.
            assert registrable_domain(host) == uncached, host

    def test_suffix_of_tail_keying_equals_full_scan(self):
        """The tail-keyed suffix cache agrees with a longest-first scan
        over the whole host (public suffixes never exceed two labels,
        so the trailing pair determines the answer for deep hosts)."""
        from repro.net.url import PUBLIC_SUFFIXES, _suffix_of, \
            _suffix_of_tail

        def reference(host):
            labels = host.split(".")
            for take in (2, 1):
                if len(labels) > take:
                    candidate = ".".join(labels[-take:])
                    if candidate in PUBLIC_SUFFIXES:
                        return candidate
            return host if host in PUBLIC_SUFFIXES else None

        _suffix_of_tail.cache_clear()
        for host in self.TRICKY_HOSTS:
            normalized = host.lower().rstrip(".")
            assert _suffix_of(normalized) == reference(normalized), host
            # Again, now guaranteed to hit the tail cache for deep hosts.
            assert _suffix_of(normalized) == reference(normalized), host

    def test_parse_url_cached_equals_uncached(self):
        from repro.net.url import _parse_url_cached

        urls = [
            "https://a.b.example.co.uk/path?x=1#f",
            "http://cdn.x.com.ru:8080/asset.js",
            "//protocol.relative.com/x",
            "bare-domain.co.uk",
            "wss://socket.example.com/live",
        ]
        _parse_url_cached.cache_clear()
        for raw in urls:
            cached = parse_url(raw)
            uncached = _parse_url_cached.__wrapped__(raw, "https")
            assert cached == uncached, raw
            assert parse_url(raw) is cached, raw  # hit returns shared instance

    def test_invalid_urls_still_raise(self):
        for raw in ["", "https://", "https://bad:port:x/",
                    "ftp://example.com/", "https://exa mple.com/"]:
            with pytest.raises(URLError):
                parse_url(raw)
            with pytest.raises(URLError):
                parse_url(raw)  # exceptions are not cached; raise every time
