"""End-to-end pipeline timing: universe build, crawls, analysis stages.

Writes machine-readable ``BENCH_pipeline.json`` at the repo root with one
entry per parallelism setting (schema ``bench-pipeline/v3``: stage ->
seconds, plus scale, parallelism, and per-run crawl **throughput** —
pages/sec and requests/sec over the crawl:all wall time).  Single-crawl
throughput is the headline metric: wall-clock speedup across parallelism
settings is meaningless on a box with fewer cores than workers (runs
where ``parallelism > cpu_count`` are annotated), while pages/sec is
comparable everywhere.  Each configuration runs in a **fresh
subprocess**: forking a worker pool from a process that already ran a
large sequential study inflates copy-on-write page faults and would make
the parallel run look slower than it is, so configs never share a
process.

Schema v3 added the analysis layer: an ``analysis:*`` stage breakdown
(tables, geography, banners, owners, policies, and ``analysis:all``),
an **analysis-docs/sec** headline (documents consumed by the analyses —
crawled pages plus collected policies — over the ``analysis:all`` wall
time), per-run ``peak_rss_mb`` (``ru_maxrss``, so the sparse similarity
engine's memory win is recorded), a ``similarity`` block timing the
sparse engine against the retained dense/linear references on the same
policy corpus, and a ``banner_detection`` block timing the prefiltered
detector against the historical parse-every-page walk on the same
landing pages.  The top-level ``analysis_speedup`` compares
``analysis:all`` against the measured pre-optimization counterfactual
(dense similarity + unfiltered banner detection on identical inputs).

Schema v5 adds the ``service`` block: a fresh-subprocess probe that
boots the measurement service (``repro serve``) on an ephemeral port,
submits one study job over HTTP, and records the submit→first-SSE-event
latency, the aggregate events/sec delivered to **8 concurrent SSE
subscribers** streaming the job to completion, and the p50 latency of a
served table (``GET /jobs/<id>/tables/table2``) against the warm store.
Probe scale via ``REPRO_PERF_SERVICE_SCALE`` (default 0.02).

Schema v6 adds the ``delta`` block: a fresh-subprocess probe that crawls
the seed epoch into a baseline store, evolves the universe one epoch
(``REPRO_PERF_DELTA_CHURN`` content churn, default 0.05), and crawls
epoch 1 twice — once as a delta crawl splicing provably-unchanged
sites' stored slices out of the baseline, once as a full crawl — then
verifies the two stores hold byte-identical event rows and records the
spliced fraction, the delta-vs-full speedup, and where the cookie-jar
digest first diverged.  Probe scale via ``REPRO_PERF_DELTA_SCALE``
(default 0.1).

Schema v7 adds the ``incremental_analysis`` block and real pool-mode
analysis timings.  The block is a fresh-subprocess probe: crawl the seed
epoch, render every section through the map/merge aggregate cache (the
cold pass persists one partial per site per analysis), delta-crawl one
evolved epoch (``REPRO_PERF_DELTA_CHURN``), then render the epoch-1
sections twice — **incremental first** (so the full pass inherits any
warm OS caches and the reported speedup is conservative), then the
monolithic reference — and record the cache hit/miss split, both wall
times, the speedup, and whether every rendered section is
byte-identical.  Pool-mode runs (``parallelism > 1``) additionally
replace the ``analysis:*`` stage readings — which after
``prefetch_analyses`` were sub-millisecond memo reads — with the real
per-analysis wall time each task spent inside the thread pool
(``Study.analysis_timings``), and carry the full per-task breakdown
under ``analysis_timings``.

Schema v4 adds the memory axis.  Every run carries ``stage_rss_mb`` —
the process RSS high-water mark sampled after each pipeline stage, so a
stage that balloons memory is attributable — and the document gains a
``memory_scaling`` block: the *streaming* configuration (lazy universe,
sharded store, trim-mode crawl, cursor-fed analyses) run at increasing
scales in fresh subprocesses, recording peak RSS per scale and the
RSS ratio across them.  The streaming run's Tables 2/4/6 are hashed and
compared against an eager-universe, in-memory reference at the smallest
scale, so the block also certifies that the bounded-memory path is
byte-identical, not merely cheap.  Probe scales come from
``REPRO_PERF_MEM_SCALES`` (comma-separated, default ``0.05,0.1``).

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/test_perf_pipeline.py \
        --scale 0.2 --parallelism-set 1,4

or through pytest (scale via ``REPRO_PERF_SCALE``, default 0.05 so the
test stays quick)::

    REPRO_PERF_SCALE=0.2 PYTHONPATH=src pytest benchmarks/test_perf_pipeline.py -q
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import pathlib
import subprocess
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_pipeline.json"
SCHEMA = "bench-pipeline/v7"
DEFAULT_COUNTRIES = ("ES", "US", "UK", "RU", "IN", "SG")
DEFAULT_MEM_SCALES = (0.05, 0.1)
DEFAULT_SERVICE_SCALE = 0.02
DEFAULT_DELTA_SCALE = 0.1

#: Per-epoch content churn for the delta probe: ~5% of sites change, so
#: ~95% of slices are spliceable — the regime delta crawls are for.
DELTA_PROBE_CHURN = 0.05

#: Concurrent SSE subscribers the service probe streams a job to.
SERVICE_SUBSCRIBERS = 8

#: Warm-store samples behind the served-table p50.
SERVICE_TABLE_SAMPLES = 21

#: Fetch-cache entry cap for the memory probes.  The default cache
#: (200k entries) is effectively unbounded at probe scales; pinning a
#: uniform small cap across scales keeps resident response bytes a
#: constant so the probe measures the pipeline, not the cache.
MEM_PROBE_FETCH_CACHE = 5000

#: Shard count for the memory probe's store.
MEM_PROBE_SHARDS = 4

#: Document cap for the dict-cosine reference in the similarity
#: comparison: the linear path is O(n² · terms) pure Python and exists
#: only as a parity/speedup reference, so it runs on a subset.
STREAM_REFERENCE_DOCS = 120


def _peak_rss_mb() -> float:
    """Peak resident set size of this process, in MiB."""
    import resource

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS.
    divisor = 2 ** 20 if sys.platform == "darwin" else 2 ** 10
    return round(peak / divisor, 1)


def _time_similarity_references(study) -> dict:
    """Sparse engine vs. the retained dense/linear references.

    All three routed consumers are measured on the corpora the study
    actually feeds them: §7.3 fraction counting and the pair stream on
    the collected valid policies, §4.1 candidate discovery on the
    owner-stage policy texts.  The dense/linear numbers are what the
    pre-sparse implementations cost on the same inputs.
    """
    clock = time.perf_counter
    from repro.core.compliance.policies import (
        pairwise_similarity_fractions,
        pairwise_similarity_fractions_dense,
    )
    from repro.core.owners import (
        _policy_similarity_pairs,
        _policy_similarity_pairs_dense,
    )
    from repro.text.sparse import engine_stats
    from repro.text.tfidf import (
        pairwise_similarities,
        pairwise_similarities_linear,
    )

    texts = [policy.text for policy in study.policies().valid_policies]
    owner_texts = [
        inspection.policy.text for inspection in study.inspections()
        if inspection.reachable and inspection.policy.link_found
        and inspection.policy.fetched_ok
    ]

    start = clock()
    fraction_sparse = pairwise_similarity_fractions(texts)
    fractions_sparse_s = clock() - start
    start = clock()
    fraction_dense = pairwise_similarity_fractions_dense(texts)
    fractions_dense_s = clock() - start
    assert fraction_sparse[1] == fraction_dense[1]
    assert abs(fraction_sparse[0] - fraction_dense[0]) < 1e-9

    start = clock()
    pairs_sparse = _policy_similarity_pairs(None, owner_texts, threshold=0.9)
    pairs_sparse_s = clock() - start
    start = clock()
    pairs_dense = _policy_similarity_pairs_dense(None, owner_texts,
                                                 threshold=0.9)
    pairs_dense_s = clock() - start
    assert pairs_sparse == pairs_dense

    stream_docs = texts[:STREAM_REFERENCE_DOCS]
    start = clock()
    for _ in pairwise_similarities(stream_docs):
        pass
    stream_sparse_s = clock() - start
    start = clock()
    for _ in pairwise_similarities_linear(stream_docs):
        pass
    stream_linear_s = clock() - start

    sparse_total = fractions_sparse_s + pairs_sparse_s + stream_sparse_s
    reference_total = fractions_dense_s + pairs_dense_s + stream_linear_s
    return {
        "policy_docs": len(texts),
        "owner_docs": len(owner_texts),
        "stream_docs": len(stream_docs),
        "pair_count": fraction_sparse[1],
        "engine": engine_stats().snapshot(),
        "fractions": {
            "sparse_seconds": round(fractions_sparse_s, 4),
            "dense_seconds": round(fractions_dense_s, 4),
        },
        "owner_pairs": {
            "sparse_seconds": round(pairs_sparse_s, 4),
            "dense_seconds": round(pairs_dense_s, 4),
        },
        "stream": {
            "sparse_seconds": round(stream_sparse_s, 4),
            "linear_seconds": round(stream_linear_s, 4),
        },
        "sparse_seconds": round(sparse_total, 4),
        "reference_seconds": round(reference_total, 4),
        "speedup": round(reference_total / sparse_total, 2)
        if sparse_total else None,
    }


def _time_partylabel_reference(study, countries) -> dict:
    """Shipped party-labeling similarity path vs. the pre-memo reference.

    ``label_parties`` re-runs over every log the analyses consume — once
    through the shipped path (cross-call pair memo + character-multiset
    prefilter; caches cleared first so the timing matches the cold
    in-run cost) and once through the historical per-call banded DP
    (no memo, no prefilter) — asserting identical labels.
    """
    clock = time.perf_counter
    import math

    from repro.core import partylabel
    from repro.text import levenshtein

    logs = [study.porn_log(country) for country in countries]
    logs.append(study.regular_log())
    cert_lookup = study.universe.certificate_for

    partylabel._domains_similar_cached.cache_clear()
    levenshtein._char_counts.cache_clear()
    start = clock()
    fast = [partylabel.label_parties(log, cert_lookup=cert_lookup)
            for log in logs]
    fast_s = clock() - start

    def reference_domains_similar(a, b, threshold):
        # The pre-memo implementation: lower + strip www, then the
        # banded DP on every call, with no cross-call reuse and no
        # multiset lower-bound rejection.
        a = a.lower()
        b = b.lower()
        if a.startswith("www."):
            a = a[4:]
        if b.startswith("www."):
            b = b[4:]
        if a == b:
            return True
        longest = max(len(a), len(b))
        cutoff = max(0, math.ceil((1.0 - threshold) * longest))
        distance = levenshtein.levenshtein_distance(a, b,
                                                    max_distance=cutoff)
        if distance > cutoff:
            return False
        return 1.0 - distance / longest > threshold

    original = partylabel._domains_similar
    partylabel._domains_similar = reference_domains_similar
    try:
        start = clock()
        reference = [partylabel.label_parties(log, cert_lookup=cert_lookup)
                     for log in logs]
        reference_s = clock() - start
    finally:
        partylabel._domains_similar = original
    assert fast == reference

    return {
        "logs": len(logs),
        "fast_seconds": round(fast_s, 4),
        "reference_seconds": round(reference_s, 4),
        "speedup": round(reference_s / fast_s, 2) if fast_s else None,
    }


def _time_banner_reference(study, countries) -> dict:
    """Prefiltered banner detector vs. the historical full walk.

    Both run over every successfully crawled landing page the Table 8
    stage actually consumes (all per-country logs), asserting identical
    observations page by page.  The reference parses every page fresh,
    exactly as the pre-optimization detector did.
    """
    clock = time.perf_counter
    from repro.core.compliance.banners import (
        detect_banner,
        detect_banner_unfiltered,
    )

    pages = []
    for country in countries:
        log = study.porn_log(country)
        pages.extend(
            (visit.site_domain, visit.html)
            for visit in log.successful_visits() if visit.html
        )

    start = clock()
    reference = [detect_banner_unfiltered(html, domain)
                 for domain, html in pages]
    reference_s = clock() - start
    start = clock()
    fast = [detect_banner(html, domain) for domain, html in pages]
    fast_s = clock() - start
    assert fast == reference

    return {
        "pages": len(pages),
        "banners": sum(1 for observation in fast if observation is not None),
        "fast_seconds": round(fast_s, 4),
        "reference_seconds": round(reference_s, 4),
        "speedup": round(reference_s / fast_s, 2) if fast_s else None,
    }


# --------------------------------------------------------------------------
# Child mode: time one (scale, parallelism) configuration in-process.
# --------------------------------------------------------------------------

def run_pipeline(scale: float, parallelism: int, countries=DEFAULT_COUNTRIES):
    """Build a universe and run the crawl + analysis pipeline, timing stages.

    Returns ``{"scale", "parallelism", "stages": {name: seconds}, ...}``.
    Stage names: ``universe_build``, ``crawl:all`` (every per-country porn
    crawl plus the regular-web control), per-country ``crawl:<CC>`` detail
    in sequential mode, and ``analysis:*`` for the downstream reports.
    """
    from repro import Study, UniverseConfig
    from repro.reporting.tables import (
        render_table1,
        render_table2,
        render_table7,
    )
    from repro.webgen.builder import build_universe

    stages: dict = {}
    stage_rss: dict = {}
    clock = time.perf_counter

    start = clock()
    universe = build_universe(UniverseConfig(scale=scale))
    stages["universe_build"] = clock() - start
    stage_rss["universe_build"] = _peak_rss_mb()

    study = Study(universe, parallelism=parallelism)
    countries = list(countries)

    start = clock()
    if parallelism > 1:
        # One batch: N porn crawls + the regular control, analyses included.
        study.prefetch_crawls(countries)
    else:
        for country in countries:
            country_start = clock()
            study.porn_log(country)
            stages[f"crawl:{country}"] = clock() - country_start
        study.regular_log()
    stages["crawl:all"] = clock() - start
    stage_rss["crawl:all"] = _peak_rss_mb()

    logs = [study.porn_log(country) for country in countries]
    logs.append(study.regular_log())
    pages = sum(len(log.visits) for log in logs)
    requests = sum(len(log.requests) for log in logs)
    crawl_seconds = stages["crawl:all"]

    # The Selenium interaction pass is a crawl, not an analysis; time it
    # separately so the analysis:* stages measure pure computation.
    start = clock()
    study.inspections()
    stages["crawl:inspections"] = clock() - start
    stage_rss["crawl:inspections"] = _peak_rss_mb()

    # The analyses allocate small objects against a heap that now holds
    # every crawl log; left alone, a generational GC pass lands in
    # whichever stage happens to cross the threshold and dominates its
    # timing.  Freeze the crawl-phase heap so the stage numbers measure
    # the analyses themselves (the reference counterfactuals below run
    # in the same frozen-heap regime, so comparisons stay fair).
    gc.collect()
    gc.freeze()

    analysis_start = clock()
    if parallelism > 1:
        # Fan the independent analyses across the thread pool; the
        # per-stage timings below then measure memo reads.
        start = clock()
        study.prefetch_analyses(countries, geo=True)
        stages["analysis:prefetch"] = clock() - start

    start = clock()
    table2 = study.table2()
    render_table2(table2)
    stages["analysis:table2"] = clock() - start

    start = clock()
    geo = study.geography(countries)
    render_table7(geo)
    stages["analysis:geography"] = clock() - start

    start = clock()
    reports = study.banner_reports(countries)
    assert set(reports) == set(countries)
    stages["analysis:banners"] = clock() - start

    start = clock()
    owners = study.owners()
    render_table1(owners, study.best_rank)
    stages["analysis:owners"] = clock() - start

    start = clock()
    policy_report = study.policies()
    assert policy_report.pair_count >= 0
    stages["analysis:policies"] = clock() - start

    stages["analysis:all"] = clock() - analysis_start
    stage_rss["analysis:all"] = _peak_rss_mb()
    analysis_docs = pages + len(policy_report.valid_policies)

    analysis_timings = None
    if parallelism > 1:
        # After prefetch_analyses the stage readings above are memo
        # hits (~1e-4 s).  Swap in the wall time each task actually
        # spent inside the thread pool, recorded by the study itself.
        analysis_timings = dict(study.analysis_timings)
        pool_stages = {
            "analysis:table2": ("table2",),
            "analysis:geography": ("geography",),
            "analysis:banners": ("banners:ES", "banners:US"),
            "analysis:owners": ("owners",),
        }
        for stage, names in pool_stages.items():
            measured = [analysis_timings[name] for name in names
                        if name in analysis_timings]
            if measured:
                stages[stage] = sum(measured)

    similarity = _time_similarity_references(study)
    banner_detection = _time_banner_reference(study, countries)
    party_labeling = _time_partylabel_reference(study, countries)

    cpu_count = os.cpu_count() or 1
    run = {
        "scale": scale,
        "parallelism": parallelism,
        "countries": countries,
        "corpus_size": len(study.corpus_domains()),
        "stages": {name: round(seconds, 4) for name, seconds in stages.items()},
        "throughput": {
            "pages": pages,
            "requests": requests,
            "pages_per_sec": round(pages / crawl_seconds, 2) if crawl_seconds else None,
            "requests_per_sec": round(requests / crawl_seconds, 2)
            if crawl_seconds else None,
        },
        "analysis_throughput": {
            "docs": analysis_docs,
            "docs_per_sec": round(analysis_docs / stages["analysis:all"], 2)
            if stages["analysis:all"] else None,
        },
        "similarity": similarity,
        "banner_detection": banner_detection,
        "party_labeling": party_labeling,
        "peak_rss_mb": _peak_rss_mb(),
        # RSS high-water mark sampled right after each stage finished
        # (ru_maxrss is monotone, so a jump attributes growth to the
        # stage it appears under).
        "stage_rss_mb": stage_rss,
        # Per-country crawl detail and the analysis:all rollup are
        # excluded: their components are already in the sum.
        "total_seconds": round(sum(
            seconds for name, seconds in stages.items()
            if (not name.startswith("crawl:")
                or name in ("crawl:all", "crawl:inspections"))
            and name != "analysis:all"
        ), 4),
    }
    if analysis_timings is not None:
        run["analysis_timings"] = {
            name: round(seconds, 4)
            for name, seconds in sorted(analysis_timings.items())
        }
    if parallelism > cpu_count:
        run["parallelism_exceeds_cpus"] = True
        run["note"] = (
            f"{parallelism} workers time-slice {cpu_count} core(s); "
            "wall-clock speedup is not meaningful on this host"
        )
    return run


# --------------------------------------------------------------------------
# Memory probes: the streaming configuration at one scale, in-process.
# --------------------------------------------------------------------------

def _tables_digest(reader) -> str:
    """SHA-256 over the rendered Tables 2/4/6 of a study."""
    import hashlib

    from repro.reporting.tables import (
        render_table2,
        render_table4,
        render_table6,
    )

    rendered = "\n".join((
        render_table2(reader.table2()),
        render_table4(reader.cookie_stats()),
        render_table6(reader.https_report()),
    ))
    return hashlib.sha256(rendered.encode("utf-8")).hexdigest()


def run_memory_probe(scale: float, *, shards: int = MEM_PROBE_SHARDS,
                     store_dir=None) -> dict:
    """The bounded-memory pipeline at one scale: lazy + sharded + cursors.

    Universe specs are minted lazily from packed rows, the crawl runs in
    trim mode (each site's events dropped once checkpointed to its
    shard), and the Table 2/4/6 analyses consume datastore cursors in a
    store-only study — the configuration whose RSS must stay flat as
    scale grows.  Returns peak RSS, per-stage RSS, and the table digest
    for parity checks against the eager in-memory reference.
    """
    import tempfile

    from repro import Study, UniverseConfig
    from repro.datastore import CrawlStore, stored_crawl
    from repro.webgen.builder import build_universe

    clock = time.perf_counter
    stages: dict = {}
    stage_rss: dict = {}

    start = clock()
    universe = build_universe(UniverseConfig(scale=scale), lazy=True,
                              fetch_cache_size=MEM_PROBE_FETCH_CACHE)
    stages["universe_build"] = clock() - start
    stage_rss["universe_build"] = _peak_rss_mb()

    store_dir = store_dir or tempfile.mkdtemp(prefix="repro-mem-probe-")
    store = CrawlStore(os.path.join(store_dir, "probe-store"), shards=shards)
    reader = Study(universe, parallelism=1, store=store, store_only=True)
    vantage = reader.vantage_points.point(reader.home_country)
    domains = reader.corpus_domains()
    stage_rss["corpus"] = _peak_rss_mb()

    start = clock()
    stored_crawl(store, universe, vantage, Study._PORN_KIND, domains,
                 hydrate=False)
    stored_crawl(store, universe, vantage, Study._REGULAR_KIND,
                 universe.reference_regular_corpus(), keep_html=False,
                 hydrate=False)
    stages["crawl:all"] = clock() - start
    stage_rss["crawl:all"] = _peak_rss_mb()

    start = clock()
    digest = _tables_digest(reader)
    stages["analysis:tables"] = clock() - start
    stage_rss["analysis:tables"] = _peak_rss_mb()

    pages = sum(manifest.visits for manifest in store.run_manifests())
    return {
        "scale": scale,
        "corpus_size": len(domains),
        "pages": pages,
        "shards": shards,
        "fetch_cache_size": MEM_PROBE_FETCH_CACHE,
        "stages": {name: round(s, 4) for name, s in stages.items()},
        "stage_rss_mb": stage_rss,
        "peak_rss_mb": _peak_rss_mb(),
        "tables_sha256": digest,
    }


def run_reference_probe(scale: float) -> dict:
    """The parity reference: eager universe, in-memory hydrated study."""
    from repro import Study, UniverseConfig
    from repro.webgen.builder import build_universe

    universe = build_universe(UniverseConfig(scale=scale))
    study = Study(universe, parallelism=1)
    return {
        "scale": scale,
        "tables_sha256": _tables_digest(study),
        "peak_rss_mb": _peak_rss_mb(),
    }


# --------------------------------------------------------------------------
# Delta probe: stored-slice splicing vs. a full re-crawl, in-process.
# --------------------------------------------------------------------------

def _store_digest(store) -> str:
    """SHA-256 over every stored event row of every run, in manifest order.

    Positions are included (they are part of the row tuples), so two
    stores digest equal only if they hold byte-identical event tables —
    the delta probe's parity check against the full re-crawl.
    """
    import hashlib

    digest = hashlib.sha256()
    manifests = sorted(store.run_manifests(),
                       key=lambda m: (m.kind, m.country_code))
    for manifest in manifests:
        digest.update(
            f"{manifest.kind}|{manifest.country_code}"
            f"|{manifest.total_sites}".encode()
        )
        for table in ("visits", "requests", "cookies", "js_calls"):
            for row in store.event_rows_in_range(manifest.run_id, table,
                                                 0, 1 << 60):
                digest.update(repr(row).encode())
    return digest.hexdigest()


def run_delta_probe(scale: float, *, churn: float = DELTA_PROBE_CHURN,
                    store_dir=None) -> dict:
    """The ``delta`` block: incremental crawl of an evolved epoch.

    Crawls the seed epoch into a baseline store, evolves one epoch, and
    crawls epoch 1 twice in streaming mode — the delta crawl *first* so
    the full crawl inherits any warm global caches and the reported
    speedup is conservative.  Verifies byte-identical stores and
    reports the spliced fraction, the speedup, and the per-kind
    jar-digest divergence points (the position where a ``jar_sensitive``
    universe would have stopped splicing; the stock universe serves
    cookie-blind, so splicing continues past it).
    """
    import tempfile

    from repro import Study, UniverseConfig
    from repro.datastore import CrawlStore, stored_crawl
    from repro.webgen.builder import build_universe

    clock = time.perf_counter
    store_dir = store_dir or tempfile.mkdtemp(prefix="repro-delta-probe-")

    def crawl_both(store, universe, domains, regular, vantage,
                   baseline=None):
        stored_crawl(store, universe, vantage, Study._PORN_KIND, domains,
                     hydrate=False, baseline=baseline)
        stored_crawl(store, universe, vantage, Study._REGULAR_KIND, regular,
                     keep_html=False, hydrate=False, baseline=baseline)

    base_config = UniverseConfig(scale=scale, churn=churn)
    base_universe = build_universe(base_config, lazy=True)
    base_study = Study(base_universe, parallelism=1)
    domains = base_study.corpus_domains()
    regular = base_universe.reference_regular_corpus()
    vantage = base_study.vantage_points.point(base_study.home_country)

    base_store = CrawlStore(os.path.join(store_dir, "epoch0"))
    start = clock()
    crawl_both(base_store, base_universe, domains, regular, vantage)
    baseline_seconds = clock() - start

    evolved_config = UniverseConfig(scale=scale, churn=churn, epoch=1)

    delta_universe = build_universe(evolved_config, lazy=True)
    delta_store = CrawlStore(os.path.join(store_dir, "epoch1-delta"))
    start = clock()
    crawl_both(delta_store, delta_universe, domains, regular, vantage,
               baseline=base_store)
    delta_seconds = clock() - start

    full_universe = build_universe(evolved_config, lazy=True)
    full_store = CrawlStore(os.path.join(store_dir, "epoch1-full"))
    start = clock()
    crawl_both(full_store, full_universe, domains, regular, vantage)
    full_seconds = clock() - start

    spliced = crawled = 0
    runs = {}
    for manifest in delta_store.run_manifests():
        stats = (manifest.stats or {}).get("delta") or {}
        spliced += stats.get("spliced", 0)
        crawled += stats.get("crawled", 0)
        runs[manifest.kind] = stats
    total = spliced + crawled
    return {
        "scale": scale,
        "churn": churn,
        "corpus_size": len(domains),
        "sites": total,
        "spliced": spliced,
        "crawled": crawled,
        "spliced_fraction": round(spliced / total, 4) if total else None,
        "runs": runs,
        "baseline_seconds": round(baseline_seconds, 4),
        "full_seconds": round(full_seconds, 4),
        "delta_seconds": round(delta_seconds, 4),
        "speedup": round(full_seconds / delta_seconds, 2)
        if delta_seconds else None,
        "stores_identical": _store_digest(full_store)
        == _store_digest(delta_store),
        "peak_rss_mb": _peak_rss_mb(),
    }


# --------------------------------------------------------------------------
# Incremental-analysis probe: map/merge aggregate cache vs. monolithic.
# --------------------------------------------------------------------------

#: Sections renderable from a single-vantage porn(ES) + regular crawl —
#: every table/figure the incremental engine feeds (Tables 1/7/8 need
#: the inspection pass or extra vantage points the probe doesn't run).
INCREMENTAL_SECTIONS = ("corpus", "table2", "table3", "figure3", "table4",
                        "figure4", "table5", "table6", "malware")


def run_incremental_probe(scale: float, *, churn: float = DELTA_PROBE_CHURN,
                          store_dir=None) -> dict:
    """The ``incremental_analysis`` block: cached map/merge vs. monolithic.

    Crawls the seed epoch, renders every supported section through the
    aggregate cache (the cold pass maps each site once and persists the
    partials), delta-crawls one evolved epoch, then renders the epoch-1
    sections both ways — **incremental first**, so the monolithic
    reference that follows inherits any warm OS page caches and the
    reported speedup is conservative — and byte-compares every section.
    Each side is timed as min-of-2 (the epoch pass is repeatable because
    the pre-pass cache file is snapshotted and restored between runs),
    with the standing heap frozen before every timed render; both keep
    scheduler and collector noise from deciding the ratio.  Only churned
    sites should miss on the epoch-1 pass; everything else is merged
    from epoch-0 partials.
    """
    import tempfile

    from repro import Study, UniverseConfig
    from repro.datastore import CrawlStore, aggregates_path, stored_crawl
    from repro.reporting import render_section
    from repro.webgen.builder import build_universe

    clock = time.perf_counter
    store_dir = store_dir or tempfile.mkdtemp(prefix="repro-incr-probe-")

    def crawl_both(store, universe, domains, regular, vantage,
                   baseline=None):
        stored_crawl(store, universe, vantage, Study._PORN_KIND, domains,
                     hydrate=False, baseline=baseline)
        stored_crawl(store, universe, vantage, Study._REGULAR_KIND, regular,
                     keep_html=False, hydrate=False, baseline=baseline)

    def render_all(study, config):
        return {name: render_section(study, config.scale, name)
                for name in INCREMENTAL_SECTIONS}

    base_config = UniverseConfig(scale=scale, churn=churn)
    base_universe = build_universe(base_config, lazy=True)
    base_study = Study(base_universe, parallelism=1)
    domains = base_study.corpus_domains()
    regular = base_universe.reference_regular_corpus()
    vantage = base_study.vantage_points.point(base_study.home_country)

    # Epoch 0: crawl, then warm the aggregate cache (the cold pass).
    base_path = os.path.join(store_dir, "epoch0")
    base_store = CrawlStore(base_path)
    crawl_both(base_store, base_universe, domains, regular, vantage)

    def settle_heap():
        # Each timed pass allocates against whatever standing heap the
        # earlier phases left behind, and a full collection scans all of
        # it — so the *later* a pass runs, the more collector time it
        # pays for the same work.  Freezing the standing heap first
        # makes every pass's GC share proportional to its own
        # allocations, which is the thing being compared.
        import gc

        gc.collect()
        gc.freeze()

    warm_study = Study(build_universe(base_config, lazy=True),
                      store=base_store, store_only=True,
                      aggregate_cache=True)
    settle_heap()
    start = clock()
    render_all(warm_study, base_config)
    warm_seconds = clock() - start
    cold_stats = warm_study.aggregate_cache.stats.as_dict()

    # Epoch 1: delta crawl.  The ``-e1`` suffix routes the epoch store
    # to the *base* store's cache file, exactly as epoch jobs do.
    evolved_config = UniverseConfig(scale=scale, churn=churn, epoch=1)
    epoch_path = base_path + "-e1"
    epoch_store = CrawlStore(epoch_path)
    crawl_both(epoch_store, build_universe(evolved_config, lazy=True),
               domains, regular, vantage, baseline=base_store)
    assert aggregates_path(epoch_path) == aggregates_path(base_path)

    # The epoch pass mutates the cache (it persists the churned sites'
    # fresh partials under brand-new content hashes — pure inserts), so
    # it can be repeated exactly by deleting the rows it added: record
    # the pre-pass rowid high-water mark, render, roll back past it,
    # render again.  min-of-2 defends both sides of the ratio against
    # scheduler noise equally.
    import sqlite3 as _sqlite3

    cache_path = aggregates_path(epoch_path)

    def _cache_high_water() -> int:
        with _sqlite3.connect(cache_path) as conn:
            row = conn.execute(
                "SELECT COALESCE(MAX(rowid), 0) FROM analysis_aggregates"
            ).fetchone()
        return row[0]

    def _cache_rollback(high_water: int) -> None:
        with _sqlite3.connect(cache_path) as conn:
            conn.execute(
                "DELETE FROM analysis_aggregates WHERE rowid > ?",
                (high_water,),
            )

    high_water = _cache_high_water()
    incremental_study = Study(build_universe(evolved_config, lazy=True),
                              store=epoch_store, store_only=True,
                              aggregate_cache=True)
    settle_heap()
    start = clock()
    incremental_sections = render_all(incremental_study, evolved_config)
    incremental_seconds = clock() - start
    epoch_stats = incremental_study.aggregate_cache.stats.as_dict()

    incremental_study.aggregate_cache.close()
    _cache_rollback(high_water)
    repeat_study = Study(build_universe(evolved_config, lazy=True),
                         store=epoch_store, store_only=True,
                         aggregate_cache=True)
    settle_heap()
    start = clock()
    repeat_sections = render_all(repeat_study, evolved_config)
    incremental_seconds = min(incremental_seconds, clock() - start)
    assert repeat_sections == incremental_sections
    assert repeat_study.aggregate_cache.stats.as_dict() == epoch_stats

    full_seconds = None
    for _ in range(2):
        full_study = Study(build_universe(evolved_config, lazy=True),
                           store=epoch_store, store_only=True)
        settle_heap()
        start = clock()
        full_sections = render_all(full_study, evolved_config)
        elapsed = clock() - start
        full_seconds = elapsed if full_seconds is None \
            else min(full_seconds, elapsed)

    cache = repeat_study.aggregate_cache
    return {
        "scale": scale,
        "churn": churn,
        "corpus_size": len(domains),
        "sections": list(INCREMENTAL_SECTIONS),
        "cold": cold_stats,
        "epoch": epoch_stats,
        "hits": epoch_stats["hits"],
        "misses": epoch_stats["misses"],
        "cached_rows": cache.row_count(),
        "cached_bytes": cache.total_bytes(),
        "warm_seconds": round(warm_seconds, 4),
        "incremental_seconds": round(incremental_seconds, 4),
        "full_seconds": round(full_seconds, 4),
        "speedup": round(full_seconds / incremental_seconds, 2)
        if incremental_seconds else None,
        "tables_identical": incremental_sections == full_sections,
        "peak_rss_mb": _peak_rss_mb(),
    }


# --------------------------------------------------------------------------
# Service probe: the measurement service under streaming load, in-process.
# --------------------------------------------------------------------------

def run_service_probe(scale: float) -> dict:
    """The ``service`` block: SSE delivery and result-serving latency.

    Boots a :class:`repro.service.ReproServer` over a fresh sharded
    store, submits one study job over HTTP, and measures: the wall time
    from submitting until the first SSE frame reaches a subscriber; the
    aggregate event frames/sec delivered to ``SERVICE_SUBSCRIBERS``
    concurrent subscribers each streaming the whole job; and the p50
    round-trip of a served table once the store is warm.
    """
    import statistics
    import tempfile
    import threading
    import urllib.request

    from repro.service import ReproServer
    from repro.service.sse import parse_stream

    clock = time.perf_counter
    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as tmp:
        server = ReproServer(os.path.join(tmp, "store"), port=0,
                             workers=1, store_shards=2)
        server.start()
        try:
            request = urllib.request.Request(
                server.url + "/jobs", method="POST",
                data=json.dumps({"scale": scale}).encode(),
                headers={"Content-Type": "application/json"})
            submit_start = clock()
            job = json.loads(urllib.request.urlopen(request).read())
            events_url = server.url + f"/jobs/{job['id']}/events"
            with urllib.request.urlopen(events_url) as resp:
                resp.readline()  # the first frame's "id: 0" line
                first_event_s = clock() - submit_start

            counts = [0] * SERVICE_SUBSCRIBERS

            def subscribe(index: int) -> None:
                chunks = []
                with urllib.request.urlopen(events_url) as stream:
                    for chunk in stream:
                        chunks.append(chunk)
                counts[index] = sum(1 for _ in parse_stream(chunks))

            threads = [threading.Thread(target=subscribe, args=(index,))
                       for index in range(SERVICE_SUBSCRIBERS)]
            stream_start = clock()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stream_seconds = clock() - stream_start
            assert len(set(counts)) == 1, counts  # identical streams

            table_url = server.url + f"/jobs/{job['id']}/tables/table2"
            urllib.request.urlopen(table_url).read()  # warm the study
            samples = []
            for _ in range(SERVICE_TABLE_SAMPLES):
                start = clock()
                urllib.request.urlopen(table_url).read()
                samples.append(clock() - start)
        finally:
            server.stop()

    delivered = sum(counts)
    return {
        "scale": scale,
        "subscribers": SERVICE_SUBSCRIBERS,
        "events_per_subscriber": counts[0],
        "submit_to_first_event_ms": round(first_event_s * 1000, 2),
        "stream_seconds": round(stream_seconds, 4),
        "events_per_sec": round(delivered / stream_seconds, 1)
        if stream_seconds else None,
        "served_table": "table2",
        "served_table_samples": SERVICE_TABLE_SAMPLES,
        "served_table_p50_ms": round(
            statistics.median(samples) * 1000, 2),
        "peak_rss_mb": _peak_rss_mb(),
    }


# --------------------------------------------------------------------------
# Orchestrator: one subprocess per configuration, merged JSON at repo root.
# --------------------------------------------------------------------------

def _run_child(extra_args, label: str) -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    command = [sys.executable, str(pathlib.Path(__file__).resolve())]
    command.extend(extra_args)
    command.append("--json")
    result = subprocess.run(command, env=env, capture_output=True, text=True)
    if result.returncode != 0:
        raise RuntimeError(
            f"benchmark child ({label}) failed:\n{result.stderr}"
        )
    return json.loads(result.stdout)


def _run_config_isolated(scale: float, parallelism: int) -> dict:
    return _run_child(
        ["--scale", str(scale), "--parallelism", str(parallelism)],
        f"parallelism={parallelism}",
    )


def _memory_scales() -> tuple:
    raw = os.environ.get("REPRO_PERF_MEM_SCALES")
    if not raw:
        return DEFAULT_MEM_SCALES
    return tuple(float(s) for s in raw.split(","))


def run_memory_scaling(scales=None) -> dict:
    """The ``memory_scaling`` block: streaming probes across scales.

    Each probe runs in a fresh subprocess so its ``ru_maxrss`` reflects
    only that scale.  The block records the peak-RSS ratio between the
    largest and smallest scale (the flatness headline — the streaming
    path should grow far slower than the ~linear in-memory pipeline)
    and, at the smallest scale, whether the streaming tables are
    byte-identical to the eager in-memory reference.
    """
    scales = tuple(sorted(scales or _memory_scales()))
    probes = [
        _run_child(["--scale", str(scale), "--memory-probe"],
                   f"memory-probe scale={scale}")
        for scale in scales
    ]
    reference = _run_child(
        ["--scale", str(scales[0]), "--reference-probe"],
        f"reference-probe scale={scales[0]}",
    )
    first, last = probes[0], probes[-1]
    block = {
        "scales": list(scales),
        "shards": MEM_PROBE_SHARDS,
        "fetch_cache_size": MEM_PROBE_FETCH_CACHE,
        "probes": probes,
        "reference": reference,
        "reference_tables_match":
            probes[0]["tables_sha256"] == reference["tables_sha256"],
    }
    if first["peak_rss_mb"]:
        block["rss_ratio"] = round(
            last["peak_rss_mb"] / first["peak_rss_mb"], 3
        )
        # The bounded-memory claim proper: RSS high-water through the
        # streaming crawl datapath (lazy universe + trim-mode crawl into
        # shards).  The full-run ratio above additionally carries the
        # analyses' O(unique-domain) aggregates and the universe model,
        # which grow with corpus *diversity*, not with page count.
        block["crawl_rss_ratio"] = round(
            last["stage_rss_mb"]["crawl:all"]
            / first["stage_rss_mb"]["crawl:all"], 3
        )
        block["scale_ratio"] = round(scales[-1] / scales[0], 2)
    return block


def _service_scale() -> float:
    return float(os.environ.get("REPRO_PERF_SERVICE_SCALE",
                                str(DEFAULT_SERVICE_SCALE)))


def _delta_scale() -> float:
    return float(os.environ.get("REPRO_PERF_DELTA_SCALE",
                                str(DEFAULT_DELTA_SCALE)))


def _delta_churn() -> float:
    return float(os.environ.get("REPRO_PERF_DELTA_CHURN",
                                str(DELTA_PROBE_CHURN)))


def run_benchmark(scale: float, parallelism_set=(1, 4),
                  output_path: pathlib.Path = OUTPUT_PATH,
                  memory_scales=None) -> dict:
    runs = [_run_config_isolated(scale, p) for p in parallelism_set]
    service_scale = _service_scale()
    delta_scale = _delta_scale()
    document = {
        "schema": SCHEMA,
        "scale": scale,
        "cpu_count": os.cpu_count(),
        "countries": list(DEFAULT_COUNTRIES),
        "runs": runs,
        "memory_scaling": run_memory_scaling(memory_scales),
        "service": _run_child(
            ["--scale", str(service_scale), "--service-probe"],
            f"service-probe scale={service_scale}",
        ),
        "delta": _run_child(
            ["--scale", str(delta_scale), "--delta-probe"],
            f"delta-probe scale={delta_scale}",
        ),
        "incremental_analysis": _run_child(
            ["--scale", str(delta_scale), "--incremental-probe"],
            f"incremental-probe scale={delta_scale}",
        ),
    }
    baseline = next((r for r in runs if r["parallelism"] == 1), None)
    if baseline is not None:
        # Headlines: single-crawl throughput and analysis docs/sec from
        # the sequential run, plus the sparse-vs-reference comparison.
        document["single_crawl_throughput"] = baseline["throughput"]
        document["analysis_throughput"] = baseline["analysis_throughput"]
        similarity = baseline["similarity"]
        banners = baseline["banner_detection"]
        labeling = baseline["party_labeling"]
        document["similarity_speedup"] = similarity["speedup"]
        document["banner_detection_speedup"] = banners["speedup"]
        document["party_labeling_speedup"] = labeling["speedup"]
        # Measured counterfactual: analysis:all with the sparse
        # similarity calls swapped back to the dense/linear references,
        # the banner stage swapped back to the unfiltered
        # parse-every-page walk, and party labeling swapped back to the
        # per-call DP — each pair timed in-run on identical inputs, so
        # the ratio is insensitive to how fast the host happens to be.
        analysis_all = baseline["stages"]["analysis:all"]
        reference_all = analysis_all \
            - similarity["sparse_seconds"] \
            + similarity["reference_seconds"] \
            - baseline["stages"]["analysis:banners"] \
            + banners["reference_seconds"] \
            - labeling["fast_seconds"] \
            + labeling["reference_seconds"]
        document["analysis_all_seconds"] = round(analysis_all, 4)
        document["analysis_all_reference_seconds"] = round(reference_all, 4)
        if analysis_all > 0:
            document["analysis_speedup"] = \
                round(reference_all / analysis_all, 2)
        for run in runs:
            if run["parallelism"] != 1 and run["total_seconds"] > 0:
                document[f"speedup_x{run['parallelism']}"] = round(
                    baseline["total_seconds"] / run["total_seconds"], 2
                )
                if run.get("parallelism_exceeds_cpus"):
                    document[f"speedup_x{run['parallelism']}_note"] = run["note"]
    output_path.write_text(json.dumps(document, indent=2) + "\n")
    return document


# --------------------------------------------------------------------------
# pytest entry point (plain test; no pytest-benchmark dependency).
# --------------------------------------------------------------------------

def test_perf_pipeline():
    scale = float(os.environ.get("REPRO_PERF_SCALE", "0.05"))
    document = run_benchmark(scale)
    assert OUTPUT_PATH.exists()
    assert document["schema"] == SCHEMA
    assert {run["parallelism"] for run in document["runs"]} == {1, 4}
    assert document["single_crawl_throughput"]["pages_per_sec"] > 0
    assert document["single_crawl_throughput"]["requests_per_sec"] > 0
    assert document["analysis_throughput"]["docs_per_sec"] > 0
    assert document["similarity_speedup"] is not None
    assert document["banner_detection_speedup"] is not None
    assert document["party_labeling_speedup"] is not None
    assert document["analysis_speedup"] is not None
    cpu_count = os.cpu_count() or 1
    for run in document["runs"]:
        assert run["stages"]["universe_build"] > 0
        assert run["stages"]["crawl:all"] > 0
        for stage in ("analysis:table2", "analysis:geography",
                      "analysis:banners", "analysis:owners",
                      "analysis:policies", "analysis:all"):
            assert stage in run["stages"], stage
        assert run["total_seconds"] > 0
        assert run["throughput"]["pages"] > 0
        assert run["throughput"]["requests"] > run["throughput"]["pages"]
        assert run["peak_rss_mb"] > 0
        for stage in ("universe_build", "crawl:all", "analysis:all"):
            assert run["stage_rss_mb"][stage] > 0, stage
        assert run["analysis_throughput"]["docs"] > 0
        if run["parallelism"] > cpu_count:
            assert run["parallelism_exceeds_cpus"] is True
    memory = document["memory_scaling"]
    assert len(memory["probes"]) == len(memory["scales"]) >= 2
    assert memory["reference_tables_match"] is True
    assert memory["rss_ratio"] > 0
    assert memory["crawl_rss_ratio"] > 0
    for probe in memory["probes"]:
        assert probe["pages"] > 0
        assert probe["peak_rss_mb"] > 0
        assert probe["shards"] == MEM_PROBE_SHARDS
    service = document["service"]
    assert service["subscribers"] == SERVICE_SUBSCRIBERS
    assert service["events_per_subscriber"] > 0
    assert service["submit_to_first_event_ms"] > 0
    assert service["events_per_sec"] > 0
    assert service["served_table_p50_ms"] > 0
    delta = document["delta"]
    assert delta["stores_identical"] is True
    assert delta["spliced"] > 0 and delta["crawled"] > 0
    assert 0.5 < delta["spliced_fraction"] < 1.0
    assert delta["speedup"] is not None and delta["speedup"] > 1.0
    incremental = document["incremental_analysis"]
    assert incremental["tables_identical"] is True
    assert incremental["hits"] > 0          # unchanged sites merged cached
    assert incremental["misses"] > 0        # churned sites re-mapped
    assert incremental["misses"] < incremental["hits"]
    assert incremental["cached_rows"] > 0
    assert incremental["speedup"] is not None and incremental["speedup"] > 1.0
    parallel_run = next((r for r in document["runs"]
                         if r["parallelism"] > 1), None)
    if parallel_run is not None:
        timings = parallel_run["analysis_timings"]
        assert "table2" in timings and "cookie_stats" in timings
        # Real pool wall time, not a memo read.
        assert max(timings.values()) > 0.001
    print(json.dumps(document, indent=2))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float,
                        default=float(os.environ.get("REPRO_PERF_SCALE",
                                                     "0.2")))
    parser.add_argument("--parallelism", type=int, default=None,
                        help="child mode: time this one configuration")
    parser.add_argument("--parallelism-set", default="1,4",
                        help="orchestrator mode: comma-separated settings")
    parser.add_argument("--memory-probe", action="store_true",
                        help="child mode: run the streaming memory probe "
                             "(lazy universe, sharded store, cursor "
                             "analyses) at --scale")
    parser.add_argument("--reference-probe", action="store_true",
                        help="child mode: eager in-memory reference for "
                             "table parity at --scale")
    parser.add_argument("--service-probe", action="store_true",
                        help="child mode: boot the measurement service, "
                             "stream one job to 8 SSE subscribers, and "
                             "time result serving at --scale")
    parser.add_argument("--delta-probe", action="store_true",
                        help="child mode: crawl the seed epoch, evolve "
                             "one epoch, then time a delta crawl against "
                             "a full re-crawl at --scale and verify "
                             "byte-identical stores")
    parser.add_argument("--incremental-probe", action="store_true",
                        help="child mode: warm the map/merge aggregate "
                             "cache on the seed epoch, delta-crawl one "
                             "evolved epoch, then time incremental vs. "
                             "monolithic analysis at --scale and verify "
                             "byte-identical sections")
    parser.add_argument("--memory-scales", default=None,
                        help="orchestrator mode: comma-separated probe "
                             "scales (default REPRO_PERF_MEM_SCALES or "
                             "0.05,0.1)")
    parser.add_argument("--json", action="store_true",
                        help="child mode: print the run as JSON to stdout")
    parser.add_argument("--output", type=pathlib.Path, default=OUTPUT_PATH,
                        help="orchestrator mode: where to write the merged "
                             "JSON (default BENCH_pipeline.json)")
    args = parser.parse_args()

    child = None
    if args.memory_probe:
        child = run_memory_probe(args.scale)
    elif args.reference_probe:
        child = run_reference_probe(args.scale)
    elif args.service_probe:
        child = run_service_probe(args.scale)
    elif args.delta_probe:
        # ``make delta-check`` pins the store dir so it can re-render
        # tables from the probe's epoch-1 stores after the probe exits.
        child = run_delta_probe(
            args.scale, churn=_delta_churn(),
            store_dir=os.environ.get("REPRO_PERF_DELTA_STORE_DIR"),
        )
    elif args.incremental_probe:
        # ``make incremental-check`` pins the store dir so it can
        # re-render sections from the probe's stores after it exits.
        child = run_incremental_probe(
            args.scale, churn=_delta_churn(),
            store_dir=os.environ.get("REPRO_PERF_DELTA_STORE_DIR"),
        )
    elif args.parallelism is not None:
        child = run_pipeline(args.scale, args.parallelism)
    if child is not None:
        print(json.dumps(child) if args.json else json.dumps(child, indent=2))
        return

    settings = tuple(int(p) for p in args.parallelism_set.split(","))
    memory_scales = None
    if args.memory_scales:
        memory_scales = tuple(float(s) for s in args.memory_scales.split(","))
    document = run_benchmark(args.scale, settings, output_path=args.output,
                             memory_scales=memory_scales)
    print(json.dumps(document, indent=2))
    print(f"\nwrote {args.output}", file=sys.stderr)


if __name__ == "__main__":
    main()
