"""Extensions: the paper's Section 10 future-work studies, implemented.

* :mod:`adblock_sim` — effectiveness of blocklist-based anti-tracking on
  this ecosystem (where 91% of fingerprinting scripts are unlisted);
* :mod:`subscriptions` — tracking on subscription vs free vs ad-supported
  sites;
* :mod:`crossborder` — cross-border flows of tracking identifiers from
  EU visitors (Iordanou et al. style).
"""

from .adblock_sim import AdblockComparison, compare_protection, crawl_with_adblocker
from .crossborder import CrossBorderReport, analyze_cross_border
from .subscriptions import (
    ModelTrackingRow,
    SubscriptionTrackingReport,
    compare_tracking_by_model,
)

__all__ = [
    "AdblockComparison",
    "compare_protection",
    "crawl_with_adblocker",
    "CrossBorderReport",
    "analyze_cross_border",
    "ModelTrackingRow",
    "SubscriptionTrackingReport",
    "compare_tracking_by_model",
]
