"""Unit tests for the TLS certificate model, DNS resolver, and geo-IP."""

import pytest

from repro.net.dns import DNSResolver, NXDomain
from repro.net.geo import (
    COUNTRIES,
    GeoIPDatabase,
    IPAllocator,
    VantagePoint,
    default_vantage_points,
)
from repro.net.tls import Certificate, certificate_matches_host, share_organization


class TestCertificate:
    def test_covers_exact_name(self):
        cert = Certificate("example.com", san=frozenset({"example.com"}))
        assert cert.covers("example.com")
        assert not cert.covers("other.com")

    def test_wildcard_one_label(self):
        cert = Certificate("*.example.com", san=frozenset({"*.example.com"}))
        assert cert.covers("a.example.com")
        assert not cert.covers("a.b.example.com")
        assert not cert.covers("example.com")

    def test_has_organization_rejects_domain_subjects(self):
        # DV certificates repeat the domain in the Subject; the paper
        # discards them for attribution.
        assert not Certificate("x.com", subject_o="x.com").has_organization
        assert not Certificate("x.com", subject_o=None).has_organization
        assert Certificate("x.com", subject_o="ExoClick S.L.").has_organization

    def test_share_organization(self):
        a = Certificate("a.com", subject_o="Oracle Corporation")
        b = Certificate("b.com", subject_o="oracle corporation")
        c = Certificate("c.com", subject_o="Other Inc.")
        assert share_organization(a, b)
        assert not share_organization(a, c)
        assert not share_organization(a, None)

    def test_certificate_matches_host_san_bridge(self):
        # A site-CDN certificate listing the parent site in its SANs.
        cert = Certificate(
            "site-cdn.com", san=frozenset({"site-cdn.com", "bigsite.com"})
        )
        assert certificate_matches_host(cert, "bigsite.com")
        assert not certificate_matches_host(cert, "unrelated.com")


class TestDNS:
    def test_exact_record(self):
        resolver = DNSResolver()
        resolver.add_record("a.com", "1.2.3.4")
        assert resolver.resolve("a.com") == "1.2.3.4"
        assert resolver.resolve("A.COM.") == "1.2.3.4"

    def test_nxdomain(self):
        resolver = DNSResolver()
        with pytest.raises(NXDomain):
            resolver.resolve("missing.com")
        assert resolver.try_resolve("missing.com") is None

    def test_wildcard_resolves_any_subdomain(self):
        resolver = DNSResolver()
        resolver.add_wildcard("exdynsrv.com", "5.6.7.8")
        assert resolver.resolve("srv3-ru.exdynsrv.com") == "5.6.7.8"
        assert resolver.resolve("exdynsrv.com") == "5.6.7.8"
        assert resolver.resolve("a.b.exdynsrv.com") == "5.6.7.8"

    def test_exact_beats_wildcard(self):
        resolver = DNSResolver()
        resolver.add_wildcard("x.com", "1.1.1.1")
        resolver.add_record("special.x.com", "2.2.2.2")
        assert resolver.resolve("special.x.com") == "2.2.2.2"

    def test_query_counter(self):
        resolver = DNSResolver()
        resolver.add_record("a.com", "1.2.3.4")
        resolver.resolve("a.com")
        resolver.try_resolve("b.com")
        assert resolver.query_count == 2


class TestGeo:
    def test_allocator_stays_in_country_prefix(self):
        allocator = IPAllocator()
        first = allocator.allocate("RU")
        second = allocator.allocate("RU")
        assert first.startswith("77.")
        assert second.startswith("77.")
        assert first != second

    def test_allocator_unknown_country(self):
        with pytest.raises(KeyError):
            IPAllocator().allocate("XX")

    def test_geoip_country_lookup(self):
        database = GeoIPDatabase()
        assert database.country_of("31.0.0.1").code == "ES"
        assert database.country_of("77.5.5.5").code == "RU"
        assert database.country_of("250.0.0.1") is None
        assert database.country_of("garbage") is None

    def test_geoip_coordinates(self):
        database = GeoIPDatabase()
        lat, lon = database.coordinates_of("31.0.0.1")
        assert lat == pytest.approx(40.4)
        assert lon == pytest.approx(-3.7)

    def test_default_vantage_points_cover_study_countries(self):
        points = default_vantage_points()
        codes = {point.country_code for point in points}
        assert codes == {"ES", "US", "UK", "RU", "IN", "SG"}
        spain = next(p for p in points if p.country_code == "ES")
        assert not spain.via_vpn  # the physical machine

    def test_vantage_point_ip_matches_country(self):
        database = GeoIPDatabase()
        for point in default_vantage_points():
            assert database.country_of(point.client_ip).code == point.country_code

    def test_eu_membership(self):
        assert COUNTRIES["ES"].in_eu
        assert not COUNTRIES["US"].in_eu
        assert COUNTRIES["UK"].age_verification_law
        assert COUNTRIES["RU"].social_login_mandate
