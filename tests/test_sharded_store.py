"""Sharded datastore (v2): routing, resume, cursors, reshard, CLI totals.

The v2 layout splits one logical store into N SQLite shard files keyed
``sha256(site_domain) % N`` behind the same ``CrawlStore`` facade.
These tests pin the invariants the streaming pipeline depends on:

* every event row of a site lands in that site's shard, at its *global*
  position;
* a crawl killed between checkpoints resumes on a sharded store exactly
  as on a v1 file, and the result is bit-identical to a clean crawl;
* the bounded-memory cursors (``iter_*`` / ``log_view``) replay the
  heap-merged shards in exact event order, so cursor-fed analyses match
  hydrated ones byte for byte;
* ``repro store reshard`` migrates a v1 file losslessly;
* ``repro store info --shards`` totals are correct for both layouts.
"""

import pytest

from repro.__main__ import main
from repro.core.cookie_analysis import analyze_cookies
from repro.core.https_analysis import analyze_https
from repro.core.partylabel import label_parties
from repro.crawler.openwpm import OpenWPMCrawler
from repro.datastore import (
    CrawlStore,
    StoredLogView,
    reshard_store,
    shard_of_domain,
    stored_crawl,
)

SHARDS = 3


@pytest.fixture()
def sharded(tmp_path):
    with CrawlStore(str(tmp_path / "shards"), shards=SHARDS) as handle:
        yield handle


class _Abort(Exception):
    """Stands in for SIGKILL between two per-site checkpoints."""


def _abort_after(checkpoint, count):
    calls = {"n": 0}

    def wrapped(domain, log, marks):
        checkpoint(domain, log, marks)
        calls["n"] += 1
        if calls["n"] >= count:
            raise _Abort

    return wrapped


class TestSharding:
    def test_shard_of_domain_is_stable_and_spread(self, crawlable_porn):
        routed = {shard_of_domain(d, SHARDS) for d in crawlable_porn}
        assert routed == set(range(SHARDS))  # all shards populated
        for domain in crawlable_porn:
            assert shard_of_domain(domain, SHARDS) == \
                shard_of_domain(domain, SHARDS)
        assert shard_of_domain("any.example", 1) == 0

    def test_layout_and_open_constraints(self, tmp_path, sharded):
        assert sharded.sharded
        assert sharded.shard_count == SHARDS
        # Reopening the directory needs no shard count; a wrong explicit
        # count is rejected.
        with CrawlStore(str(tmp_path / "shards")) as reopened:
            assert reopened.shard_count == SHARDS
        with pytest.raises(ValueError):
            CrawlStore(str(tmp_path / "shards"), shards=SHARDS + 1)

    def test_sharding_existing_v1_file_is_rejected(self, tmp_path):
        path = str(tmp_path / "v1.db")
        CrawlStore(path).close()
        with pytest.raises(ValueError, match="reshard"):
            CrawlStore(path, shards=4)

    def test_rows_land_in_their_site_shard(self, sharded, universe,
                                           vantage_points, crawlable_porn):
        vantage = vantage_points.point("ES")
        stored_crawl(sharded, universe, vantage, "openwpm:porn",
                     crawlable_porn)
        for index in range(SHARDS):
            mine = [d for d in crawlable_porn
                    if shard_of_domain(d, SHARDS) == index]
            conn = sharded._conn(index)
            domains = [row[0] for row in conn.execute(
                "SELECT DISTINCT site_domain FROM visits")]
            assert sorted(domains) == sorted(mine)
            # Request rows of a shard's run only reference its sites.
            pages = {row[0] for row in conn.execute(
                "SELECT DISTINCT page_domain FROM requests")}
            assert pages <= set(mine)

    def test_store_roundtrip_matches_in_memory(self, sharded, universe,
                                               vantage_points,
                                               crawlable_porn):
        vantage = vantage_points.point("ES")
        in_memory = OpenWPMCrawler(universe, vantage).crawl(crawlable_porn)
        via_store = stored_crawl(sharded, universe, vantage, "openwpm:porn",
                                 crawlable_porn)
        assert via_store == in_memory
        reloaded = stored_crawl(sharded, universe, vantage, "openwpm:porn",
                                crawlable_porn)
        assert reloaded == in_memory
        assert reloaded._seq == in_memory._seq


class TestKilledAndResumed:
    ABORT_AFTER = 4

    @pytest.fixture()
    def resumed_store(self, tmp_path, universe, vantage_points,
                      crawlable_porn):
        """A sharded store whose crawl was killed mid-run, then resumed."""
        path = str(tmp_path / "resume-shards")
        vantage = vantage_points.point("ES")
        with CrawlStore(path, shards=SHARDS) as store:
            state = store.open_run(universe.config, vantage, "openwpm:porn",
                                   crawlable_porn)
            with pytest.raises(_Abort):
                OpenWPMCrawler(universe, vantage).crawl(
                    crawlable_porn,
                    checkpoint=_abort_after(store.checkpointer(state.run_id),
                                            self.ABORT_AFTER))
        store = CrawlStore(path)
        state = store.find_run(universe.config, vantage, "openwpm:porn",
                               crawlable_porn)
        assert len(state.completed) == self.ABORT_AFTER
        assert not state.finished
        resumed = stored_crawl(store, universe, vantage, "openwpm:porn",
                               crawlable_porn)
        yield store, state.run_id, resumed
        store.close()

    def test_resume_is_bit_identical(self, resumed_store, universe,
                                     vantage_points, crawlable_porn):
        _, _, resumed = resumed_store
        clean = OpenWPMCrawler(
            universe, vantage_points.point("ES")).crawl(crawlable_porn)
        assert resumed == clean
        assert resumed._seq == clean._seq

    def test_cursors_replay_hydrated_log_in_order(self, resumed_store):
        store, run_id, resumed = resumed_store
        assert list(store.iter_visits(run_id)) == resumed.visits
        assert list(store.iter_requests(run_id)) == resumed.requests
        assert list(store.iter_cookies(run_id)) == resumed.cookies
        assert list(store.iter_js_calls(run_id)) == resumed.js_calls
        # Tiny batches exercise the heap merge across fetchmany windows.
        assert list(store.iter_requests(run_id, batch=3)) == resumed.requests

    def test_cursor_fed_analyses_match_hydrated(self, resumed_store,
                                                universe, study):
        """Satellite contract: analyses over a ``StoredLogView`` are
        byte-identical to the same analyses over the hydrated log."""
        store, run_id, _ = resumed_store
        hydrated = store.load_log(run_id)
        view = store.log_view(run_id)
        assert isinstance(view, StoredLogView)
        assert view.country_code == hydrated.country_code
        assert view.successful_visit_count() == \
            len(hydrated.successful_visits())

        cert_lookup = universe.certificate_for
        view_labels = label_parties(view, cert_lookup=cert_lookup)
        hydrated_labels = label_parties(hydrated, cert_lookup=cert_lookup)
        assert view_labels == hydrated_labels
        assert analyze_cookies(view) == analyze_cookies(hydrated)
        popularity = study.popularity()
        assert analyze_https(view, view_labels, popularity) == \
            analyze_https(hydrated, hydrated_labels, popularity)
        # The view is re-iterable: a second pass sees the same rows.
        assert analyze_cookies(view) == analyze_cookies(hydrated)


class TestCursorEdgeCases:
    """Heap-merge paths that are only hit incidentally elsewhere: runs
    that leave whole shards empty, shard files lost on disk, and
    resharding a store that holds no runs at all."""

    def test_empty_shards_merge_cleanly(self, sharded, universe,
                                        vantage_points, crawlable_porn):
        # Crawl only the domains that route to shard 0, so shards 1..N-1
        # hold the run manifest but zero event rows; the merge must not
        # choke on (or reorder around) exhausted streams.
        subset = [d for d in crawlable_porn
                  if shard_of_domain(d, SHARDS) == 0]
        assert subset and len(subset) < len(crawlable_porn)
        vantage = vantage_points.point("ES")
        log = stored_crawl(sharded, universe, vantage, "openwpm:porn",
                           subset)
        run_id = sharded.run_manifests()[0].run_id
        for index in range(1, SHARDS):
            conn = sharded._conn(index)
            assert conn.execute("SELECT COUNT(*) FROM visits").fetchone() \
                == (0,)
        assert list(sharded.iter_visits(run_id)) == log.visits
        assert list(sharded.iter_requests(run_id)) == log.requests
        assert list(sharded.iter_cookies(run_id)) == log.cookies
        assert list(sharded.iter_js_calls(run_id)) == log.js_calls
        # batch=1 forces a fetchmany window per row, the worst case for
        # interleaving live streams with exhausted ones.
        assert list(sharded.iter_requests(run_id, batch=1)) == log.requests
        assert sharded.count_events(run_id, "requests") == len(log.requests)

    def test_missing_shard_file_fails_fast(self, tmp_path, universe,
                                           vantage_points, crawlable_porn):
        import os

        path = str(tmp_path / "lossy")
        with CrawlStore(path, shards=SHARDS) as store:
            stored_crawl(store, universe, vantage_points.point("ES"),
                         "openwpm:porn", crawlable_porn)
        os.remove(os.path.join(path, "shard-0001.sqlite"))
        # The survivors' stamps disagree with the inferred shard count,
        # so the open fails loudly instead of silently merging a subset.
        with pytest.raises(ValueError, match="stamped"):
            CrawlStore(path)

    def test_reshard_empty_v1_store(self, tmp_path):
        src = str(tmp_path / "empty.db")
        CrawlStore(src).close()
        dst = str(tmp_path / "empty-sharded")
        created = reshard_store(src, dst, shards=SHARDS)
        assert len(created) == SHARDS
        with CrawlStore(dst) as store:
            assert store.shard_count == SHARDS
            assert store.run_manifests() == []
            assert store.stored_config() is None


class TestReshard:
    def _seeded_v1(self, tmp_path, universe, vantage_points, crawlable_porn):
        path = str(tmp_path / "flat.db")
        with CrawlStore(path) as store:
            vantage = vantage_points.point("ES")
            stored_crawl(store, universe, vantage, "openwpm:porn",
                         crawlable_porn)
            stored_crawl(store, universe, vantage, "openwpm:regular",
                         universe.reference_regular_corpus(),
                         keep_html=False)
        return path

    def test_reshard_is_lossless(self, tmp_path, universe, vantage_points,
                                 crawlable_porn):
        src = self._seeded_v1(tmp_path, universe, vantage_points,
                              crawlable_porn)
        dst = str(tmp_path / "resharded")
        created = reshard_store(src, dst, shards=4)
        assert len(created) == 4

        with CrawlStore(src) as flat, CrawlStore(dst) as sharded:
            assert sharded.shard_count == 4
            flat_manifests = flat.run_manifests()
            sharded_manifests = sharded.run_manifests()
            assert len(flat_manifests) == len(sharded_manifests) == 2
            for before, after in zip(flat_manifests, sharded_manifests):
                assert before.run_key == after.run_key
                assert before.visits == after.visits
                assert before.requests == after.requests
                assert before.cookies == after.cookies
                assert before.stats == after.stats
                flat_log = flat.load_log(before.run_id)
                sharded_log = sharded.load_log(after.run_id)
                assert sharded_log == flat_log
                assert sharded_log._seq == flat_log._seq

    def test_reshard_refuses_bad_inputs(self, tmp_path, universe,
                                        vantage_points, crawlable_porn):
        src = self._seeded_v1(tmp_path, universe, vantage_points,
                              crawlable_porn)
        with pytest.raises(ValueError):
            reshard_store(src, str(tmp_path / "x"), shards=1)
        dst = str(tmp_path / "taken")
        reshard_store(src, dst, shards=2)
        with pytest.raises(ValueError):
            reshard_store(src, dst, shards=2)  # destination exists
        with pytest.raises(ValueError):
            reshard_store(dst + "/shard-0000.sqlite",
                          str(tmp_path / "y"), shards=2)  # src is a shard


class TestCLITotals:
    SCALE, CLI_SEED = "0.02", "3"

    def _crawl(self, db, extra=()):
        assert main(["crawl", "--scale", self.SCALE, "--seed", self.CLI_SEED,
                     "--sites", "6", "--store", db, *extra]) == 0

    def test_store_info_shards_on_v1(self, tmp_path, capsys):
        db = str(tmp_path / "flat.db")
        self._crawl(db)
        capsys.readouterr()
        assert main(["store", "info", db, "--shards"]) == 0
        out = capsys.readouterr().out
        assert "single file" in out
        assert "1 shard(s)" in out
        assert "6" in out  # visit total

    def test_store_info_shards_on_v2_totals(self, tmp_path, capsys):
        db = str(tmp_path / "sharded")
        self._crawl(db, extra=("--store-shards", str(SHARDS)))
        capsys.readouterr()
        assert main(["store", "info", db, "--shards"]) == 0
        out = capsys.readouterr().out
        assert f"{SHARDS} shards" in out
        assert f"{SHARDS} shard(s)" in out

        with CrawlStore(db) as store:
            infos = store.shard_infos()
            manifests = store.run_manifests()
        assert len(infos) == SHARDS
        assert sum(info.visits for info in infos) == 6
        # Each shard carries the run's manifest row.
        assert all(info.runs == len(manifests) for info in infos)
        for info in infos:
            assert str(info.visits) in out
