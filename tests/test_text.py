"""Unit tests for the text-analytics substrate."""

import math

import pytest

from repro.text.langs import (
    AGE_GATE_BUTTON_KEYWORDS,
    COOKIE_BANNER_KEYWORDS,
    LANGUAGES,
    PRIVACY_LINK_KEYWORDS,
    all_keywords,
    contains_keyword,
    matching_keywords,
)
from repro.text.levenshtein import domains_similar, levenshtein_distance, similarity
from repro.text.tfidf import TfIdfVectorizer, cosine_similarity, pairwise_similarities
from repro.text.tokenize import term_counts, tokenize


class TestTokenize:
    def test_basic_words(self):
        assert tokenize("Hello, World!") == ["hello", "world"]

    def test_keeps_hyphens_and_apostrophes(self):
        assert tokenize("opt-out of user's data") == \
            ["opt-out", "of", "user's", "data"]

    def test_numbers(self):
        assert tokenize("18 years") == ["18", "years"]

    def test_essex_is_one_token(self):
        # Token matching must not see "sex" inside "Essex".
        assert "sex" not in tokenize("Essex county news")

    def test_term_counts(self):
        assert term_counts("a b a") == {"a": 2, "b": 1}


class TestLevenshtein:
    def test_identical(self):
        assert levenshtein_distance("abc", "abc") == 0

    def test_classic_example(self):
        assert levenshtein_distance("kitten", "sitting") == 3

    def test_empty(self):
        assert levenshtein_distance("", "abc") == 3
        assert similarity("", "") == 1.0

    def test_symmetry(self):
        assert levenshtein_distance("ab", "ba") == levenshtein_distance("ba", "ab")

    def test_paper_positive_pair(self):
        # §4.2: doublepimp.com and doublepimpssl.com are the same entity.
        assert domains_similar("doublepimp.com", "doublepimpssl.com")

    def test_paper_negative_pair(self):
        # ... while doubleclick.net is not.
        assert not domains_similar("doublepimp.com", "doubleclick.net")

    def test_www_stripped(self):
        assert domains_similar("www.example.com", "example.com")

    def test_threshold_strict_inequality(self):
        # similarity exactly at the threshold is rejected.
        assert not domains_similar("abcde", "vwxyz", threshold=0.0) or \
            similarity("abcde", "vwxyz") > 0.0


class TestTfIdf:
    def test_identical_documents_similarity_one(self):
        vectorizer = TfIdfVectorizer()
        corpus = ["the cat sat on the mat", "the cat sat on the mat", "dogs bark"]
        vectors = vectorizer.fit_transform(corpus)
        assert cosine_similarity(vectors[0], vectors[1]) == pytest.approx(1.0)

    def test_disjoint_documents_similarity_zero(self):
        vectorizer = TfIdfVectorizer()
        vectors = vectorizer.fit_transform(["alpha beta", "gamma delta"])
        assert cosine_similarity(vectors[0], vectors[1]) == 0.0

    def test_unfitted_transform_raises(self):
        with pytest.raises(RuntimeError):
            TfIdfVectorizer().transform("text")

    def test_min_df_filters_rare_terms(self):
        vectorizer = TfIdfVectorizer(min_df=2)
        vectorizer.fit(["rare word here", "word again", "word thrice"])
        vector = vectorizer.transform("rare word")
        assert "rare" not in vector
        assert "word" in vector

    def test_min_df_validation(self):
        with pytest.raises(ValueError):
            TfIdfVectorizer(min_df=0)

    def test_pairwise_count(self):
        pairs = list(pairwise_similarities(["a b", "a c", "d e"]))
        assert len(pairs) == 3  # C(3,2)
        indices = {(i, j) for i, j, _ in pairs}
        assert indices == {(0, 1), (0, 2), (1, 2)}

    def test_similarity_in_unit_range(self):
        vectorizer = TfIdfVectorizer()
        corpus = ["a b c d", "b c d e", "x y z"]
        vectors = vectorizer.fit_transform(corpus)
        for i in range(3):
            for j in range(3):
                value = cosine_similarity(vectors[i], vectors[j])
                assert 0.0 <= value <= 1.0 + 1e-9


class TestLanguageTables:
    def test_eight_languages_everywhere(self):
        for table in (AGE_GATE_BUTTON_KEYWORDS, PRIVACY_LINK_KEYWORDS,
                      COOKIE_BANNER_KEYWORDS):
            assert set(table) == set(LANGUAGES)
            for keywords in table.values():
                assert keywords  # non-empty per language

    def test_paper_age_keywords_present(self):
        english = AGE_GATE_BUTTON_KEYWORDS["en"]
        for keyword in ("yes", "enter", "agree", "continue", "accept"):
            assert keyword in english

    def test_contains_keyword(self):
        assert contains_keyword("Click ENTER to continue", AGE_GATE_BUTTON_KEYWORDS)
        assert not contains_keyword("nothing here", PRIVACY_LINK_KEYWORDS)

    def test_matching_keywords_sorted(self):
        matches = matching_keywords("accept and continue", AGE_GATE_BUTTON_KEYWORDS)
        assert matches == sorted(matches)
        assert "accept" in matches

    def test_all_keywords_merges(self):
        merged = all_keywords(PRIVACY_LINK_KEYWORDS)
        assert "privacy" in merged
        assert "datenschutz" in merged
        assert "конфиденциальности" in merged
