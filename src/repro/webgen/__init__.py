"""Synthetic web ecosystem generator (the study's crawl substrate)."""

from .builder import build_universe
from .config import CalibrationTargets, TIER_NAMES, UniverseConfig
from .rank import RankModel, RankTrajectory, TOP_LIST_SIZE, tier_of_rank
from .sites import AgeGateSpec, BannerSpec, PornSiteSpec, RegularSiteSpec
from .thirdparty import NAMED_SERVICES, ThirdPartyService, named_service_map
from .universe import (
    ClientContext,
    FetchError,
    SiteTimeoutError,
    SiteUnresponsiveError,
    Universe,
)

__all__ = [
    "build_universe",
    "CalibrationTargets",
    "TIER_NAMES",
    "UniverseConfig",
    "RankModel",
    "RankTrajectory",
    "TOP_LIST_SIZE",
    "tier_of_rank",
    "AgeGateSpec",
    "BannerSpec",
    "PornSiteSpec",
    "RegularSiteSpec",
    "NAMED_SERVICES",
    "ThirdPartyService",
    "named_service_map",
    "ClientContext",
    "FetchError",
    "SiteTimeoutError",
    "SiteUnresponsiveError",
    "Universe",
]
