"""Disconnect-style entity list: domain -> parent organization.

Section 4.2(3) starts from Disconnect's domain-to-company mapping, finds it
incomplete (only 142 companies resolvable), and completes it with X.509
Subject organizations (1,014 companies).  This module models the list
itself; the completion logic lives in :mod:`repro.core.attribution`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..net.url import registrable_domain

__all__ = ["DisconnectEntry", "DisconnectList"]


@dataclass(frozen=True)
class DisconnectEntry:
    """One organization with the domains Disconnect attributes to it."""

    organization: str
    category: str  # advertising | analytics | social | content | fingerprinting
    domains: Tuple[str, ...]


class DisconnectList:
    """Lookup table from registrable domain to organization."""

    def __init__(self, entries: Iterable[DisconnectEntry] = ()) -> None:
        self._entries: List[DisconnectEntry] = []
        self._by_domain: Dict[str, DisconnectEntry] = {}
        for entry in entries:
            self.add(entry)

    def add(self, entry: DisconnectEntry) -> None:
        self._entries.append(entry)
        for domain in entry.domains:
            self._by_domain[registrable_domain(domain)] = entry

    def lookup(self, host: str) -> Optional[DisconnectEntry]:
        """Find the entry covering ``host`` (by registrable domain)."""
        return self._by_domain.get(registrable_domain(host))

    def organization_of(self, host: str) -> Optional[str]:
        entry = self.lookup(host)
        return entry.organization if entry else None

    def category_of(self, host: str) -> Optional[str]:
        entry = self.lookup(host)
        return entry.category if entry else None

    @property
    def organizations(self) -> Set[str]:
        return {entry.organization for entry in self._entries}

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)
