"""Tests for §5.1.3-§5.1.4: fingerprinting detection heuristics."""

import pytest

from repro.core.fingerprinting import (
    FONT_ENUMERATION_THRESHOLD,
    MEASURE_TEXT_THRESHOLD,
    analyze_fingerprinting,
    is_canvas_fingerprinting,
    is_font_enumeration,
    passes_englehardt_canvas,
)
from repro.js.api import API, JSCall
from repro.js.runtime import (
    CanvasBehavior,
    FontProbeBehavior,
    ScriptBehavior,
    execute_script,
)

URL = "https://tracker.example/fp.js"


def calls_for(behavior, url=URL, host="site.com"):
    calls, _ = execute_script(url, behavior, document_host=host)
    return calls


class TestEnglehardtCriteria:
    def _clean_canvas(self, **overrides):
        spec = dict(width=300, height=150, colors=3, reads_back=True,
                    uses_save_restore=False, uses_event_listener=False)
        spec.update(overrides)
        return CanvasBehavior(**spec)

    def test_textbook_fingerprinter_passes(self):
        calls = calls_for(ScriptBehavior(canvas=self._clean_canvas()))
        assert passes_englehardt_canvas(calls)

    def test_small_canvas_rejected(self):
        calls = calls_for(
            ScriptBehavior(canvas=self._clean_canvas(width=10, height=10))
        )
        assert not passes_englehardt_canvas(calls)

    def test_no_read_back_rejected(self):
        calls = calls_for(
            ScriptBehavior(canvas=self._clean_canvas(reads_back=False))
        )
        assert not passes_englehardt_canvas(calls)

    def test_small_read_area_rejected(self):
        calls = calls_for(ScriptBehavior(canvas=self._clean_canvas(
            read_api=API.CONTEXT_GET_IMAGE_DATA, read_area=100)))
        assert not passes_englehardt_canvas(calls)

    def test_save_restore_rejected(self):
        # Criterion (4): drawing-app behavior disqualifies the script.
        calls = calls_for(
            ScriptBehavior(canvas=self._clean_canvas(uses_save_restore=True))
        )
        assert not passes_englehardt_canvas(calls)

    def test_event_listener_rejected(self):
        calls = calls_for(
            ScriptBehavior(canvas=self._clean_canvas(uses_event_listener=True))
        )
        assert not passes_englehardt_canvas(calls)

    def test_single_color_short_text_rejected(self):
        calls = calls_for(ScriptBehavior(canvas=self._clean_canvas(
            colors=1, text="aaaa")))
        assert not passes_englehardt_canvas(calls)


class TestPaperRule:
    def test_fifty_same_text_measurements_match(self):
        probe = FontProbeBehavior(fonts=4, repeats_per_font=16)  # 64 calls
        calls = calls_for(ScriptBehavior(font_probe=probe))
        assert is_canvas_fingerprinting(calls)

    def test_below_threshold_not_matched(self):
        probe = FontProbeBehavior(fonts=4, repeats_per_font=10)  # 40 calls
        calls = calls_for(ScriptBehavior(font_probe=probe))
        assert not is_canvas_fingerprinting(calls)

    def test_distinct_texts_defeat_same_text_rule(self):
        probe = FontProbeBehavior(fonts=120, repeats_per_font=1,
                                  distinct_texts=True)
        calls = calls_for(ScriptBehavior(font_probe=probe))
        assert not is_canvas_fingerprinting(calls)
        assert is_font_enumeration(calls)

    def test_font_property_required(self):
        calls = [
            JSCall(URL, "s.com", API.CONTEXT_MEASURE_TEXT, {"text": "x"})
            for _ in range(60)
        ]
        assert not is_canvas_fingerprinting(calls)

    def test_font_enumeration_threshold(self):
        few = FontProbeBehavior(fonts=FONT_ENUMERATION_THRESHOLD - 1,
                                repeats_per_font=2, distinct_texts=True)
        calls = calls_for(ScriptBehavior(font_probe=few))
        assert not is_font_enumeration(calls)


class TestReportIntegration:
    @pytest.fixture(scope="class")
    def report(self, study):
        return study.fingerprinting()

    def test_englehardt_finds_nothing(self, report):
        """The paper's negative result: zero scripts pass the strict filters."""
        assert len(report.englehardt_scripts) == 0

    def test_canvas_scripts_found_by_paper_rule(self, report):
        assert len(report.canvas_scripts) > 0
        assert len(report.canvas_sites) > 0

    def test_majority_of_canvas_scripts_unlisted(self, report):
        """The 91% headline: blocklists miss the fingerprinters."""
        assert report.unlisted_canvas_fraction() > 0.7

    def test_most_canvas_scripts_are_third_party(self, report):
        fraction = len(report.canvas_third_party_scripts()) / \
            len(report.canvas_scripts)
        assert 0.5 <= fraction <= 0.95

    def test_font_enumeration_is_online_metrix(self, report):
        domains = {s.domain for s in report.font_enumeration_scripts}
        if not domains:
            pytest.skip("online-metrix not embedded at this scale")
        assert "online-metrix.net" in domains

    def test_webrtc_scripts_found(self, report):
        assert len(report.webrtc_scripts) > 0
        assert len(report.webrtc_sites) > 0

    def test_per_service_table_ranked(self, study, report):
        labels = study.porn_labels()
        rows = report.per_service_table(
            lambda domain: len(labels.sites_embedding(domain))
        )
        presences = [presence for _, presence, _, _ in rows]
        assert presences == sorted(presences, reverse=True)
