"""HTTP API logic, independent of the socket layer (service layer 4a).

:class:`ServiceAPI` maps ``(method, path, body)`` to ``(status,
content-type, bytes)`` so the handler in :mod:`server` stays a thin
shim and the whole surface is testable without a socket.  The one route
the API does *not* serve is ``GET /jobs/<id>/events`` — that is a
streaming response the handler writes itself from the job's
:class:`~repro.service.events.EventLog`.

Result endpoints render from the shared store through a cached
store-only :class:`~repro.study.Study` — the exact object ``repro
report`` builds — via :mod:`repro.reporting.sections`, so a served
table is byte-identical to the corresponding chunk of the CLI report by
construction (``make serve-check`` reassembles and diffs the whole
report to enforce it).  The cache is sound because results are a pure
function of the store's pinned universe config: new jobs can only *add*
runs for the same config, never change a rendered section.
"""

from __future__ import annotations

import json
import re
import threading
from typing import Optional, Tuple

from .jobs import JobManager, JobSpec, JobState

__all__ = ["ApiError", "ServiceAPI"]

Response = Tuple[int, str, bytes]

_JOB_PATH = re.compile(r"^/jobs/([0-9]+)$")
_RESULT_PATH = re.compile(r"^/jobs/([0-9]+)/(tables|figures|report)(?:/([\w:.-]+))?$")


class ApiError(Exception):
    """An error response: ``(status, message)``."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def _json_response(status: int, document) -> Response:
    body = (json.dumps(document, indent=2, sort_keys=True) + "\n").encode()
    return status, "application/json", body


def _text_response(status: int, text: str) -> Response:
    return status, "text/plain; charset=utf-8", text.encode("utf-8")


class ServiceAPI:
    """Routes requests against one :class:`JobManager` and one store."""

    def __init__(self, manager: JobManager, store) -> None:
        self.manager = manager
        self.store = store
        self._study_lock = threading.Lock()
        self._result_study = None

    # -- routing --------------------------------------------------------

    def handle(self, method: str, path: str,
               body: Optional[bytes] = None) -> Response:
        try:
            return self._route(method, path, body)
        except ApiError as exc:
            return _json_response(exc.status, {"error": exc.message})

    def _route(self, method: str, path: str,
               body: Optional[bytes]) -> Response:
        if path == "/" and method == "GET":
            return self._index()
        if path == "/store/info" and method == "GET":
            return self._store_info()
        if path == "/jobs":
            if method == "GET":
                return _json_response(200, {
                    "jobs": [job.to_dict() for job in self.manager.list()]
                })
            if method == "POST":
                return self._submit(body)
            raise ApiError(405, f"{method} not allowed on /jobs")
        match = _JOB_PATH.match(path)
        if match:
            if method == "GET":
                return _json_response(200, self._job(match.group(1)).to_dict())
            if method == "DELETE":
                return self._cancel(match.group(1))
            raise ApiError(405, f"{method} not allowed on {path}")
        match = _RESULT_PATH.match(path)
        if match:
            if method != "GET":
                raise ApiError(405, f"{method} not allowed on {path}")
            return self._result(*match.groups())
        raise ApiError(404, f"no route for {path}")

    def _index(self) -> Response:
        return _json_response(200, {
            "service": "repro measurement service",
            "store": self.store.path,
            "endpoints": [
                "POST /jobs",
                "GET /jobs",
                "GET /jobs/<id>",
                "DELETE /jobs/<id>",
                "GET /jobs/<id>/events",
                "GET /jobs/<id>/report",
                "GET /jobs/<id>/tables/<name>",
                "GET /jobs/<id>/figures/<name>",
                "GET /store/info",
            ],
        })

    # -- jobs -----------------------------------------------------------

    def _job(self, job_id: str):
        try:
            return self.manager.get(job_id)
        except KeyError:
            raise ApiError(404, f"no job {job_id}") from None

    def _submit(self, body: Optional[bytes]) -> Response:
        from ..crawler.vpn import VantagePointManager

        try:
            raw = json.loads(body or b"{}")
        except json.JSONDecodeError as exc:
            raise ApiError(400, f"invalid JSON body: {exc}") from None
        if not isinstance(raw, dict):
            raise ApiError(400, "body must be a JSON object")
        known = {"seed", "scale", "countries", "geo", "analyses",
                 "epoch", "churn", "delta"}
        unknown = set(raw) - known
        if unknown:
            raise ApiError(400, f"unknown fields: {sorted(unknown)}")
        try:
            spec = JobSpec(
                seed=int(raw.get("seed", JobSpec.seed)),
                scale=float(raw.get("scale", JobSpec.scale)),
                countries=tuple(raw.get("countries") or ()),
                geo=bool(raw.get("geo", False)),
                analyses=tuple(raw.get("analyses") or ()),
                epoch=int(raw.get("epoch", JobSpec.epoch)),
                churn=float(raw.get("churn", JobSpec.churn)),
                delta=bool(raw.get("delta", False)),
            )
        except (TypeError, ValueError) as exc:
            raise ApiError(400, str(exc)) from None
        valid = set(VantagePointManager().country_codes)
        bad = set(spec.countries) - valid
        if bad:
            raise ApiError(400, f"unknown countries: {sorted(bad)}")
        self._check_config(spec)
        job = self.manager.submit(spec)
        return _json_response(201, job.to_dict())

    def _check_config(self, spec: JobSpec) -> None:
        """One store, one universe: reject specs that disagree."""
        from ..datastore import config_to_json
        from ..webgen.config import UniverseConfig

        stored = self.store.stored_config()
        if stored is None:
            return
        # Epoch jobs land in sibling stores, but they still evolve from
        # this store's universe, so the epoch-0 identity (seed, scale,
        # churn) must agree for the chain to be coherent.
        requested = UniverseConfig(seed=spec.seed, scale=spec.scale,
                                   churn=spec.churn)
        if config_to_json(requested) != config_to_json(stored):
            raise ApiError(409, (
                f"store {self.store.path} is pinned to seed={stored.seed} "
                f"scale={stored.scale}; submit a matching job or serve a "
                "different store"
            ))

    def _cancel(self, job_id: str) -> Response:
        job = self._job(job_id)
        try:
            self.manager.cancel(job.id)
        except ValueError as exc:
            raise ApiError(409, str(exc)) from None
        return _json_response(202, job.to_dict())

    # -- results --------------------------------------------------------

    def result_study(self):
        """The cached store-only study every result endpoint renders from."""
        with self._study_lock:
            if self._result_study is not None:
                return self._result_study
            config = self.store.stored_config()
            if config is None:
                raise ApiError(409, (
                    f"store {self.store.path} holds no runs yet; submit a "
                    "job and wait for it to finish"
                ))
            from ..study import Study
            from ..webgen.builder import build_universe

            self._result_study = Study(
                build_universe(config, lazy=True),
                store=self.store, store_only=True,
            )
            return self._result_study

    def _result(self, job_id: str, family: str,
                name: Optional[str]) -> Response:
        from ..datastore import MissingRunError
        from ..reporting import sections as reporting

        job = self._job(job_id)
        if job.state != JobState.DONE:
            raise ApiError(409, (
                f"job {job_id} is {job.state}; results are served once it "
                "is done"
            ))
        study = self.result_study()
        scale, geo = job.spec.scale, job.spec.geo
        try:
            if family == "report":
                if name is not None:
                    raise ApiError(404, "report takes no name")
                return _text_response(
                    200, reporting.full_report(study, scale, geo=geo))
            available = reporting.section_names(geo=geo)
            if family == "figures":
                if name is None:
                    return _json_response(200, {
                        "figures": ["figure1", "figure3", "figure4"]
                    })
                if name not in ("figure1", "figure3", "figure4"):
                    raise ApiError(404, f"no figure {name}")
                return _text_response(
                    200, reporting.render_figure(study, scale, name) + "\n")
            tables = [n for n in available if n not in
                      reporting.FIGURE_SECTIONS]
            if name is None:
                return _json_response(200, {"tables": tables})
            if name not in available or name in reporting.FIGURE_SECTIONS:
                raise ApiError(404, f"no table {name}")
            # Lazy per-section rendering: a job that ran a subset of
            # analyses can still serve the sections that subset feeds.
            return _text_response(
                200, reporting.render_section(study, scale, name) + "\n")
        except MissingRunError as exc:
            raise ApiError(409, str(exc)) from None

    # -- store ----------------------------------------------------------

    def _store_info(self) -> Response:
        config = self.store.stored_config()
        runs = [{
            "kind": run.kind,
            "country": run.country_code,
            "sites": run.total_sites,
            "completed_sites": run.completed_sites,
            "complete": run.complete,
            "visits": run.visits,
            "requests": run.requests,
            "cookies": run.cookies,
            "js_calls": run.js_calls,
        } for run in self.store.run_manifests()]
        return _json_response(200, {
            "path": self.store.path,
            "schema_version": self.store.schema_version(),
            "shards": self.store.shard_count,
            "config": (None if config is None
                       else {"seed": config.seed, "scale": config.scale}),
            "runs": runs,
        })
