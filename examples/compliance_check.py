#!/usr/bin/env python3
"""Regulatory-compliance check (the paper's Section 7).

For a corpus of pornographic sites: cookie-consent banners (EU vs USA),
age-verification mechanisms on the most popular sites, and privacy-policy
presence/quality — ending with a per-site GDPR red-flag list.

Run:  python examples/compliance_check.py [scale]
"""

import sys

from repro import Study, UniverseConfig
from repro.reporting import render_table8


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    study = Study.build(UniverseConfig(scale=scale))
    corpus = study.corpus_domains()
    print(f"corpus: {len(corpus)} sites (scale={scale})\n")

    # --- Cookie banners (§7.1, Table 8) ----------------------------------------
    eu = study.banners("ES")
    us = study.banners("US")
    print("Cookie-consent banners (fraction of the corpus):")
    print(render_table8(eu, us))
    no_option = eu.count("no_option")
    print(f"\n{no_option} of {len(eu.observations)} EU banners give the user "
          "no choice at all (No Option type)")

    # --- Age verification (§7.2) ---------------------------------------------------
    report = study.age_verification(top_n=min(50, len(corpus)),
                                    countries=("US", "UK", "ES", "RU"))
    print("\nAge verification on the top-50 sites:")
    for country in ("US", "UK", "ES", "RU"):
        summary = report.by_country[country]
        print(f"  {country}: {len(summary.gated_sites)} gated, "
              f"{len(summary.bypassed_sites)} bypassed by the crawler, "
              f"{len(summary.login_required_sites)} verifiable (login-based)")
    ru = report.by_country["RU"]
    if ru.login_required_sites:
        print(f"  only {sorted(ru.login_required_sites)[0]} implements a "
              "verifiable mechanism, and only for Russian visitors")

    # --- Privacy policies (§7.3) -------------------------------------------------------
    policies = study.policies()
    print(f"\nPrivacy policies: {len(policies.valid_policies)} of "
          f"{len(corpus)} sites ({policies.presence_fraction:.0%})")
    print(f"  mention the GDPR: {policies.gdpr_fraction:.0%}")
    print(f"  mean length: {policies.mean_letters:,.0f} letters "
          f"(min {policies.min_letters:,}, max {policies.max_letters:,})")
    print(f"  pairs with TF-IDF similarity > 0.5: "
          f"{policies.similar_pair_fraction:.0%} (template reuse)")

    # --- Red flags: tracking without transparency -----------------------------------------
    stats = study.cookie_stats()
    with_policy = {policy.site_domain for policy in policies.valid_policies}
    bannered = {observation.site_domain for observation in eu.observations}
    tracked = {
        cookie.page_domain for cookie in study.porn_log().cookies
        if not cookie.session and len(cookie.value) >= 6
    }
    silent = sorted(tracked - with_policy - bannered)
    print(f"\nGDPR red flags: {len(silent)} of {len(corpus)} sites "
          f"({len(silent) / len(corpus):.0%}) set identifier cookies with "
          "neither a privacy policy nor a consent banner:")
    for domain in silent[:10]:
        print(f"  - {domain}")
    if len(silent) > 10:
        print(f"  ... and {len(silent) - 10} more")


if __name__ == "__main__":
    main()
