"""HTTP cookies: ``Set-Cookie`` parsing and a browser cookie jar.

The jar enforces the same-origin access rule the paper discusses in
Section 5.1.2 (a service can only read cookies scoped to its own domain),
which is precisely the restriction cookie *syncing* circumvents by moving
identifiers into URLs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Tuple

from .url import URL, is_subdomain_of

__all__ = ["Cookie", "CookieJar", "parse_set_cookie"]


@dataclass(frozen=True)
class Cookie:
    """A single HTTP cookie as stored by the browser."""

    name: str
    value: str
    domain: str
    path: str = "/"
    secure: bool = False
    http_only: bool = False
    session: bool = True
    max_age: Optional[int] = None
    #: FQDN of the response that set the cookie (observational metadata).
    set_by: str = ""
    #: True when ``Domain=`` was present, enabling subdomain sharing.
    domain_attribute: bool = False

    @property
    def key(self) -> Tuple[str, str, str]:
        """Identity of the cookie slot: (domain, path, name)."""
        return (self.domain, self.path, self.name)

    def matches_host(self, host: str) -> bool:
        """True if this cookie is sent to requests for ``host``."""
        if self.domain_attribute:
            return is_subdomain_of(host, self.domain)
        return host == self.domain


def parse_set_cookie(header: str, *, request_host: str) -> Optional[Cookie]:
    """Parse one ``Set-Cookie`` header value into a :class:`Cookie`.

    Returns ``None`` for malformed headers or cookies whose ``Domain``
    attribute the request host is not allowed to set (domain mismatch),
    following browser behavior.
    """
    parts = [part.strip() for part in header.split(";")]
    if not parts or "=" not in parts[0]:
        return None
    name, _, value = parts[0].partition("=")
    name = name.strip()
    if not name:
        return None

    domain = request_host
    domain_attribute = False
    path = "/"
    secure = False
    http_only = False
    session = True
    max_age: Optional[int] = None

    for attribute in parts[1:]:
        if not attribute:
            continue
        key, _, attr_value = attribute.partition("=")
        key = key.strip().lower()
        attr_value = attr_value.strip()
        if key == "domain" and attr_value:
            candidate = attr_value.lstrip(".").lower()
            # A host may only scope cookies to itself or a parent domain.
            if not is_subdomain_of(request_host, candidate):
                return None
            domain = candidate
            domain_attribute = True
        elif key == "path" and attr_value.startswith("/"):
            path = attr_value
        elif key == "secure":
            secure = True
        elif key == "httponly":
            http_only = True
        elif key == "max-age":
            try:
                max_age = int(attr_value)
            except ValueError:
                continue
            session = False
        elif key == "expires":
            session = False

    return Cookie(
        name=name,
        value=value,
        domain=domain,
        path=path,
        secure=secure,
        http_only=http_only,
        session=session,
        max_age=max_age,
        set_by=request_host,
        domain_attribute=domain_attribute,
    )


class CookieJar:
    """The browser's cookie store.

    The paper keeps a single browser session alive for the whole crawl to
    observe cookie synchronization; the jar is therefore long-lived and
    shared across page visits — and grows to tens of thousands of entries,
    so lookups are indexed by cookie domain rather than scanned.
    """

    def __init__(self) -> None:
        self._cookies: Dict[Tuple[str, str, str], Cookie] = {}
        self._by_domain: Dict[str, Dict[Tuple[str, str, str], Cookie]] = {}

    def __len__(self) -> int:
        return len(self._cookies)

    def __iter__(self):
        return iter(self._cookies.values())

    def store(self, cookie: Cookie) -> None:
        """Store or overwrite a cookie; ``Max-Age<=0`` deletes the slot."""
        if cookie.max_age is not None and cookie.max_age <= 0:
            removed = self._cookies.pop(cookie.key, None)
            if removed is not None:
                self._by_domain.get(removed.domain, {}).pop(cookie.key, None)
            return
        self._cookies[cookie.key] = cookie
        self._by_domain.setdefault(cookie.domain, {})[cookie.key] = cookie

    def store_from_response(self, headers: Iterable[str], request_host: str) -> List[Cookie]:
        """Parse and store every ``Set-Cookie`` header; return stored cookies."""
        stored = []
        for header in headers:
            cookie = parse_set_cookie(header, request_host=request_host)
            if cookie is not None:
                self.store(cookie)
                stored.append(cookie)
        return stored

    def cookies_for(self, url: URL) -> List[Cookie]:
        """Cookies that would be attached to a request for ``url``.

        Only the cookie domains that are suffixes of the request host can
        possibly match, so lookup walks the host's label suffixes instead
        of scanning the whole jar.
        """
        selected = []
        labels = url.host.split(".")
        for start in range(len(labels) - 1):
            domain = ".".join(labels[start:])
            bucket = self._by_domain.get(domain)
            if not bucket:
                continue
            for cookie in bucket.values():
                if not cookie.matches_host(url.host):
                    continue
                if cookie.secure and not url.is_secure:
                    continue
                if not url.path.startswith(cookie.path):
                    continue
                selected.append(cookie)
        # Longest path first, then name, for a deterministic Cookie header.
        selected.sort(key=lambda c: (-len(c.path), c.name))
        return selected

    def cookie_header_for(self, url: URL) -> Optional[str]:
        """Build the ``Cookie`` request header for ``url``, if any."""
        cookies = self.cookies_for(url)
        if not cookies:
            return None
        return "; ".join(f"{c.name}={c.value}" for c in cookies)

    def all_cookies(self) -> List[Cookie]:
        return list(self._cookies.values())

    def domains(self) -> List[str]:
        return sorted({c.domain for c in self._cookies.values()})

    def clear(self) -> None:
        self._cookies.clear()
        self._by_domain.clear()
