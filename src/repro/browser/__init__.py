"""Instrumented browser and crawl log schema."""

from .browser import Browser, MAX_REDIRECTS
from .events import CookieRecord, CrawlLog, PageVisit, RequestRecord
from .storage import dump_lines, load_log, parse_lines, save_log

__all__ = [
    "Browser",
    "MAX_REDIRECTS",
    "CookieRecord",
    "CrawlLog",
    "PageVisit",
    "RequestRecord",
    "dump_lines",
    "load_log",
    "parse_lines",
    "save_log",
]
