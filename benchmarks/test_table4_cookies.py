"""Table 4 — top third-party domains delivering identifier cookies."""

from conftest import scaled

from repro.core.cookie_analysis import analyze_cookies
from repro.net.url import registrable_domain
from repro.reporting.tables import render_table4


def test_table4_cookies(benchmark, study, paper, reporter):
    regular_bases = {
        registrable_domain(fqdn)
        for fqdn in study.regular_labels().all_third_party_fqdns
    }
    ats_bases = {
        registrable_domain(fqdn) for fqdn in study.porn_ats().ats_fqdns
    } | study.porn_ats().ats_domains_relaxed
    log = study.porn_log()
    stats = benchmark.pedantic(
        lambda: analyze_cookies(log, ats_domains=ats_bases,
                                regular_web_domains=regular_bases),
        rounds=1, iterations=1,
    )

    for domain, fraction, cookies, ip_fraction in paper.top_cookie_domains:
        measured = next((d for d in stats.top_domains if d.domain == domain),
                        None)
        if measured is None:
            reporter.row(f"{domain}", f"{fraction:.0%} / {cookies} cookies",
                         "below top-5")
            continue
        reporter.row(
            f"{domain}: % sites / cookies / % with IP",
            f"{fraction:.0%} / {scaled(cookies)} / {ip_fraction:.0%}",
            f"{measured.site_fraction:.0%} / {measured.cookie_count} / "
            f"{measured.ip_cookie_fraction:.0%}",
        )
    reporter.text(render_table4(stats))

    # exosrv.com leads Table 4 and most of its cookies embed the client IP.
    assert stats.top_domains
    exosrv = next((d for d in stats.top_domains if d.domain == "exosrv.com"),
                  None)
    assert exosrv is not None
    assert exosrv.ip_cookie_fraction > 0.7
    assert exosrv.is_ats
    # All Table 4 rows are ATS services (as in the paper).
    assert all(d.is_ats for d in stats.top_domains)
