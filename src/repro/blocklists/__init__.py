"""Blocklists: EasyList/EasyPrivacy filter engine and Disconnect entities."""

from .disconnect import DisconnectEntry, DisconnectList
from .easylist import FilterList, FilterRule, MatchContext, parse_rule

__all__ = [
    "DisconnectEntry",
    "DisconnectList",
    "FilterList",
    "FilterRule",
    "MatchContext",
    "parse_rule",
]
