"""Tests for the parallel crawl executor and the fetch/parse caches."""

import pytest

from repro import Study
from repro.cache import BoundedCache, FetchCache, content_key
from repro.crawler.executor import (
    ANALYSIS_ATS,
    ANALYSIS_LABELS,
    ANALYSIS_MALWARE,
    CrawlExecutionError,
    CrawlExecutor,
    CrawlSpec,
)
from repro.html.parser import parse_html, parse_html_cached
from repro.net.http import Request
from repro.net.url import parse_url
from repro.reporting.tables import render_table7
from repro.webgen.universe import ClientContext

COUNTRIES = ("ES", "RU", "US")


def _log_fingerprint(log):
    return (
        log.country_code,
        [(r.url, r.seq, r.status, r.failed, r.error) for r in log.requests],
        [(c.name, c.value, c.domain, c.seq) for c in log.cookies],
        [(v.site_domain, v.success, v.status, v.html) for v in log.visits],
        [(j.script_url, j.document_host, j.api) for j in log.js_calls],
    )


class TestExecutorDeterminism:
    def test_parallel_logs_equal_sequential(self, universe):
        sequential = Study(universe, parallelism=1)
        parallel = Study(universe, parallelism=4)
        geo_seq = sequential.geography(COUNTRIES)
        geo_par = parallel.geography(COUNTRIES)
        for country in COUNTRIES:
            assert _log_fingerprint(sequential.porn_log(country)) == \
                _log_fingerprint(parallel.porn_log(country)), country
        assert render_table7(geo_seq) == render_table7(geo_par)

    def test_parallel_derived_analyses_equal_sequential(self, universe):
        sequential = Study(universe, parallelism=1)
        parallel = Study(universe, parallelism=4)
        sequential.geography(COUNTRIES)
        parallel.geography(COUNTRIES)
        for country in COUNTRIES:
            assert sequential.porn_labels(country).third_party_direct == \
                parallel.porn_labels(country).third_party_direct
            assert sequential.porn_ats(country).ats_fqdns == \
                parallel.porn_ats(country).ats_fqdns
            assert sequential.malware(country).malicious_third_parties == \
                parallel.malware(country).malicious_third_parties

    def test_outcomes_follow_submission_order(self, universe, vantage_points,
                                              crawlable_porn):
        executor = CrawlExecutor(universe, vantage_points, parallelism=4)
        specs = [
            CrawlSpec(key=f"porn:{c}", country=c,
                      domains=tuple(crawlable_porn[:5]))
            for c in ("SG", "ES", "IN")
        ]
        outcomes = executor.run(specs)
        assert [o.key for o in outcomes] == ["porn:SG", "porn:ES", "porn:IN"]
        assert [o.country for o in outcomes] == ["SG", "ES", "IN"]


class TestExecutorFailures:
    def test_worker_crash_propagates_clearly(self, universe, vantage_points,
                                             crawlable_porn):
        executor = CrawlExecutor(universe, vantage_points, parallelism=4)
        specs = [
            CrawlSpec(key="porn:ES", country="ES",
                      domains=tuple(crawlable_porn[:3])),
            CrawlSpec(key="porn:BR", country="BR",  # no such vantage point
                      domains=tuple(crawlable_porn[:3])),
        ]
        with pytest.raises(CrawlExecutionError) as excinfo:
            executor.run(specs)
        assert excinfo.value.key == "porn:BR"
        assert excinfo.value.country == "BR"
        assert "KeyError" in str(excinfo.value)

    def test_thread_backend_crash_propagates(self, universe, vantage_points,
                                             crawlable_porn):
        executor = CrawlExecutor(universe, vantage_points, parallelism=2,
                                 backend="thread")
        specs = [
            CrawlSpec(key="bad", country="XX", domains=()),
            CrawlSpec(key="good", country="ES",
                      domains=tuple(crawlable_porn[:2])),
        ]
        with pytest.raises(CrawlExecutionError):
            executor.run(specs)

    def test_duplicate_keys_rejected(self, universe, vantage_points):
        executor = CrawlExecutor(universe, vantage_points, parallelism=2)
        spec = CrawlSpec(key="dup", country="ES", domains=())
        with pytest.raises(ValueError):
            executor.run([spec, spec])

    def test_unknown_analysis_rejected(self):
        with pytest.raises(ValueError):
            CrawlSpec(key="x", country="ES", domains=(), analyses=("nope",))


class TestForkProgressTallies:
    def test_fork_backend_replays_event_counts(self, universe,
                                               vantage_points,
                                               crawlable_porn):
        """The process backend can't stream per-site callbacks out of its
        children; it must count them locally and replay the merged
        tallies as ``progress(event, count=N, ...)`` — previously the
        events were silently dropped and ``--stats`` read all zeros."""
        from collections import Counter

        domains = tuple(crawlable_porn[:4])
        replayed = []
        executor = CrawlExecutor(
            universe, vantage_points, parallelism=2, backend="process",
            progress=lambda event, **fields: replayed.append((event,
                                                              fields)))
        specs = [CrawlSpec(key=f"porn:{c}", country=c, domains=domains)
                 for c in ("ES", "US")]
        outcomes = executor.run(specs)
        for outcome in outcomes:
            assert outcome.event_counts["site_started"] == len(domains)
            assert outcome.event_counts["site_finished"] == len(domains)
        totals = Counter()
        for event, fields in replayed:
            totals[event] += fields.get("count", 1)
        assert totals["site_started"] == 2 * len(domains)
        assert totals["site_finished"] == 2 * len(domains)
        # Replayed events say which crawl they came from.
        assert {f["key"] for e, f in replayed if e == "site_finished"} == \
            {"porn:ES", "porn:US"}

    def test_serial_backend_fires_progress_live(self, universe,
                                                vantage_points,
                                                crawlable_porn):
        domains = tuple(crawlable_porn[:3])
        seen = []
        executor = CrawlExecutor(
            universe, vantage_points, parallelism=1,
            progress=lambda event, **fields: seen.append((event, fields)))
        executor.run([CrawlSpec(key="porn:ES", country="ES",
                                domains=domains)])
        finished = [f for e, f in seen if e == "site_finished"]
        assert len(finished) == len(domains)  # one live event per site
        assert all("count" not in f for f in finished)
        assert [f["domain"] for f in finished] == list(domains)


class TestSerialFallback:
    def test_parallelism_one_uses_serial_backend(self, universe,
                                                 vantage_points):
        executor = CrawlExecutor(universe, vantage_points, parallelism=1)
        assert executor._resolve_backend(spec_count=6) == "serial"

    def test_single_spec_uses_serial_backend(self, universe, vantage_points):
        executor = CrawlExecutor(universe, vantage_points, parallelism=8)
        assert executor._resolve_backend(spec_count=1) == "serial"

    def test_serial_run_matches_parallel_run(self, universe, vantage_points,
                                             crawlable_porn):
        domains = tuple(crawlable_porn[:8])
        spec = [CrawlSpec(key="porn:UK", country="UK", domains=domains,
                          analyses=(ANALYSIS_LABELS,))]
        serial = CrawlExecutor(universe, vantage_points, parallelism=1)
        threaded = CrawlExecutor(universe, vantage_points, parallelism=2,
                                 backend="thread")
        one = serial.run(list(spec))[0]
        # Force the pooled path with a second (dummy) spec.
        two = threaded.run(list(spec) + [
            CrawlSpec(key="porn:IN", country="IN", domains=domains)
        ])[0]
        assert _log_fingerprint(one.log) == _log_fingerprint(two.log)
        assert one.labels.third_party_direct == two.labels.third_party_direct

    def test_prefetch_noop_when_sequential(self, universe):
        study = Study(universe, parallelism=1)
        study.prefetch_crawls(["ES", "US"])
        assert not study._memoized("porn_log:ES")
        assert not study._memoized("porn_log:US")

    def test_empty_run(self, universe, vantage_points):
        executor = CrawlExecutor(universe, vantage_points, parallelism=4)
        assert executor.run([]) == []


class TestWorkerAnalyses:
    def test_worker_bundle_matches_study_sequential(self, universe,
                                                    vantage_points):
        study = Study(universe, parallelism=1)
        domains = tuple(study.corpus_domains())
        executor = CrawlExecutor(universe, vantage_points, parallelism=2)
        outcome = executor.run([
            CrawlSpec(key="porn:SG", country="SG", domains=domains,
                      analyses=(ANALYSIS_LABELS, ANALYSIS_ATS,
                                ANALYSIS_MALWARE)),
            CrawlSpec(key="porn:UK", country="UK", domains=domains),
        ])[0]
        assert outcome.labels.third_party_direct == \
            study.porn_labels("SG").third_party_direct
        assert outcome.ats.ats_fqdns == study.porn_ats("SG").ats_fqdns
        assert outcome.malware.malicious_third_parties == \
            study.malware("SG").malicious_third_parties


class TestBannersShareCrawl:
    def test_banners_reuse_geography_crawl(self, universe):
        study = Study(universe, parallelism=1)
        log = study.porn_log("US")          # the §6 crawl for the US
        report = study.banners("US")        # §7.1 must not re-crawl
        assert study.porn_log("US") is log
        assert report.sites_checked == len(study.corpus_domains())

    def test_non_home_logs_keep_html(self, universe):
        study = Study(universe, parallelism=1)
        visits = study.porn_log("US").successful_visits()
        assert visits and any(v.html for v in visits)

    def test_banner_reports_batch(self, universe):
        study = Study(universe, parallelism=1)
        reports = study.banner_reports(["ES", "US"])
        assert set(reports) == {"ES", "US"}
        assert reports["ES"] is study.banners("ES")


class TestFetchCache:
    def test_identical_requests_hit_cache(self, universe):
        client = ClientContext("ES", "31.0.0.7")
        request = Request(parse_url("https://exosrv.com/px?cb=1"))
        before = universe.fetch_cache.stats.hits
        first = universe.fetch(request, client)
        second = universe.fetch(request, client)
        assert second is first
        assert universe.fetch_cache.stats.hits > before

    def test_deterministic_failures_cached(self, universe):
        dead = sorted(d for d, s in universe.porn_sites.items()
                      if not s.responsive)
        if not dead:
            pytest.skip("no dead sites at this scale")
        client = ClientContext("ES", "31.0.0.7")
        request = Request(parse_url(f"https://{dead[0]}/"))
        with pytest.raises(Exception) as first:
            universe.fetch(request, client)
        with pytest.raises(Exception) as second:
            universe.fetch(request, client)
        assert type(first.value) is type(second.value)

    def test_cache_exception_replay(self):
        cache = FetchCache()
        calls = []

        def boom():
            calls.append(1)
            raise ValueError("deterministic")

        for _ in range(3):
            with pytest.raises(ValueError):
                cache.fetch("k", boom)
        assert len(calls) == 1


class TestBoundedCache:
    def test_fifo_eviction(self):
        cache = BoundedCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert "a" not in cache
        assert cache.get("b") == 2
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_get_or_create_runs_factory_once(self):
        cache = BoundedCache()
        values = [cache.get_or_create("k", lambda: object()) for _ in range(3)]
        assert values[0] is values[1] is values[2]
        assert cache.stats.misses == 1
        assert cache.stats.hits == 2

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            BoundedCache(maxsize=0)


class TestParseCache:
    MARKUP = ("<html><body><div id='x'><script src='https://a.com/a.js'>"
              "</script><p>hello<p>world</div></body></html>")

    @staticmethod
    def _shape(element):
        return (element.tag, sorted(element.attrs.items()),
                [TestParseCache._shape(child) for child in element.children
                 if hasattr(child, "tag")])

    def test_cached_tree_matches_uncached(self):
        cached = parse_html_cached(self.MARKUP)
        plain = parse_html(self.MARKUP)
        assert self._shape(cached) == self._shape(plain)

    def test_same_markup_same_tree_instance(self):
        assert parse_html_cached(self.MARKUP) is parse_html_cached(self.MARKUP)

    def test_content_key_distinguishes_content(self):
        assert content_key("<p>a</p>") != content_key("<p>b</p>")
        assert content_key("<p>a</p>") == content_key("<p>a</p>")
