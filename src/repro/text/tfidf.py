"""TF-IDF vectorization and cosine similarity.

The paper uses TF-IDF twice:

* Section 4.1 — similarity between privacy policies and between the HTML
  ``<head>`` elements of site pairs, to cluster sites under a common owner;
* Section 7.3 — pairwise similarity of all collected privacy policies
  (76% of pairs above 0.5).

Documents are vectorized with log-scaled term frequency and smoothed
inverse document frequency; similarity is the cosine of the two vectors,
which lies in [0, 1] for non-negative weights (the paper describes the
range as [-1, 1], the general cosine bound).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .tokenize import term_counts

__all__ = [
    "TfIdfVectorizer",
    "cosine_similarity",
    "pairwise_similarities",
    "pairwise_similarities_linear",
]

Vector = Dict[str, float]


class TfIdfVectorizer:
    """Fits IDF weights on a corpus and transforms documents to vectors."""

    def __init__(self, *, min_df: int = 1) -> None:
        if min_df < 1:
            raise ValueError("min_df must be >= 1")
        self.min_df = min_df
        self._idf: Optional[Dict[str, float]] = None
        self._documents = 0

    @property
    def is_fitted(self) -> bool:
        return self._idf is not None

    @property
    def vocabulary_size(self) -> int:
        return len(self._idf) if self._idf else 0

    def fit(self, corpus: Sequence[str]) -> "TfIdfVectorizer":
        """Learn IDF weights from ``corpus``."""
        document_frequency: Dict[str, int] = {}
        for document in corpus:
            for term in set(term_counts(document)):
                document_frequency[term] = document_frequency.get(term, 0) + 1
        self._documents = len(corpus)
        # Smoothed IDF: idf(t) = ln((1 + N) / (1 + df)) + 1, always > 0.
        self._idf = {
            term: math.log((1 + self._documents) / (1 + df)) + 1.0
            for term, df in document_frequency.items()
            if df >= self.min_df
        }
        return self

    def transform(self, document: str) -> Vector:
        """Vectorize one document using the fitted IDF weights."""
        if self._idf is None:
            raise RuntimeError("vectorizer is not fitted; call fit() first")
        vector: Vector = {}
        for term, count in term_counts(document).items():
            idf = self._idf.get(term)
            if idf is None:
                continue
            vector[term] = (1.0 + math.log(count)) * idf
        return vector

    def fit_transform(self, corpus: Sequence[str]) -> List[Vector]:
        self.fit(corpus)
        return [self.transform(document) for document in corpus]


def cosine_similarity(a: Vector, b: Vector) -> float:
    """Cosine similarity between two sparse vectors (0 when either is empty)."""
    if not a or not b:
        return 0.0
    if len(b) < len(a):
        a, b = b, a
    dot = sum(weight * b.get(term, 0.0) for term, weight in a.items())
    if dot == 0.0:
        return 0.0
    norm_a = math.sqrt(sum(w * w for w in a.values()))
    norm_b = math.sqrt(sum(w * w for w in b.values()))
    return dot / (norm_a * norm_b)


def pairwise_similarities(
    documents: Sequence[str], *, vectorizer: Optional[TfIdfVectorizer] = None
) -> Iterable[Tuple[int, int, float]]:
    """Yield ``(i, j, similarity)`` for every unordered document pair.

    This is the Section 7.3 computation (1.2M pairs in the paper); it is
    a generator so callers can stream and aggregate without materializing
    the full pair list.  Pairs come from the blocked sparse gram kernel
    (:class:`~repro.text.sparse.SimilarityEngine`, same log-TF × smoothed
    IDF weighting as :class:`TfIdfVectorizer`) in the nested-loop order
    of the historical dict-cosine implementation, which survives as
    :func:`pairwise_similarities_linear` for parity testing.
    """
    from .sparse import SimilarityEngine

    if vectorizer is not None:
        min_df = vectorizer.min_df
        vectorizer.fit(documents)  # preserve the fit side effect
    else:
        min_df = 1
    engine = SimilarityEngine(min_df=min_df, use_idf=True).fit(documents)
    return engine.iter_pairs()


def pairwise_similarities_linear(
    documents: Sequence[str], *, vectorizer: Optional[TfIdfVectorizer] = None
) -> Iterable[Tuple[int, int, float]]:
    """The historical O(n²) dict-cosine pair stream (reference path)."""
    vectorizer = vectorizer or TfIdfVectorizer()
    vectors = vectorizer.fit_transform(documents)
    for i in range(len(vectors)):
        for j in range(i + 1, len(vectors)):
            yield (i, j, cosine_similarity(vectors[i], vectors[j]))
