"""Crawlers: OpenWPM-style measurement, Selenium-style interaction, VPNs,
and the parallel multi-vantage crawl executor."""

from .executor import (
    CrawlExecutionError,
    CrawlExecutor,
    CrawlOutcome,
    CrawlSpec,
    default_parallelism,
)
from .openwpm import OpenWPMCrawler
from .selenium import (
    AgeGateObservation,
    PolicyObservation,
    SeleniumCrawler,
    SiteInspection,
    find_age_gate_button,
)
from .vpn import VantagePointManager, client_for

__all__ = [
    "CrawlExecutionError",
    "CrawlExecutor",
    "CrawlOutcome",
    "CrawlSpec",
    "default_parallelism",
    "OpenWPMCrawler",
    "AgeGateObservation",
    "PolicyObservation",
    "SeleniumCrawler",
    "SiteInspection",
    "find_age_gate_button",
    "VantagePointManager",
    "client_for",
]
