"""Token-index property tests: indexed ``matches()`` == linear scan.

The index may only ever *narrow* the candidate set it evaluates, never
change the verdict.  These tests drive it with (a) the universe's full
synthetic EasyList/EasyPrivacy corpora against real crawl-shaped URLs,
and (b) randomized rules — wildcards, anchors, ``^`` separators,
exceptions, ``$domain=`` / type / party options — against randomized
URLs, asserting agreement with :meth:`FilterList.matches_linear` on
every single query.
"""

from __future__ import annotations

import random

import pytest

from repro.blocklists.easylist import (
    FilterList,
    MatchContext,
    _safe_tokens,
    parse_rule,
)

SEED = 20191021


# ---------------------------------------------------------------------------
# Token-extraction unit properties
# ---------------------------------------------------------------------------

class TestSafeTokens:
    def test_bounded_tokens_are_extracted(self):
        assert "banner" in _safe_tokens("/ad/banner-", start_anchor=False,
                                        end_anchor=False)
        assert "ads" in _safe_tokens("/ads/", start_anchor=False,
                                     end_anchor=False)

    def test_edge_tokens_are_rejected_without_anchor(self):
        # "ads" at the pattern edge may continue inside a URL token
        # ("loads.js"), so it must not be indexed on.
        assert _safe_tokens("ads", start_anchor=False, end_anchor=False) == []
        assert "ads" not in _safe_tokens("ads/track", start_anchor=False,
                                         end_anchor=False)

    def test_anchor_makes_edge_token_safe(self):
        assert "http" in _safe_tokens("http://x/", start_anchor=True,
                                      end_anchor=False)
        assert "gif" in _safe_tokens("/px.gif", start_anchor=False,
                                     end_anchor=True)

    def test_wildcard_edges_are_unsafe(self):
        tokens = _safe_tokens("/a*tracker*b/", start_anchor=False,
                              end_anchor=False)
        assert "tracker" not in tokens


# ---------------------------------------------------------------------------
# Corpus rules vs crawl-shaped URLs
# ---------------------------------------------------------------------------

def crawl_urls(universe, porn_log):
    urls = [record.url for record in porn_log.requests[:4000]]
    # Stress the miss path too: hosts the lists never mention.
    urls.extend(
        f"https://unlisted-{index}.example.com/ad/banner-{index}.js"
        for index in range(50)
    )
    return urls


class TestCorpusParity:
    @pytest.fixture(scope="class")
    def lists(self, universe):
        return (FilterList.from_text(universe.easylist_text),
                FilterList.from_text(universe.easyprivacy_text))

    def test_index_agrees_on_crawl_urls(self, universe, porn_log, lists):
        contexts = (
            MatchContext(),
            MatchContext(first_party_host="pornsite.com",
                         resource_type="script"),
            MatchContext(first_party_host="example.com",
                         resource_type="image"),
        )
        checked = 0
        for filter_list in lists:
            for url in crawl_urls(universe, porn_log):
                for context in contexts:
                    assert filter_list.matches(url, context) == \
                        filter_list.matches_linear(url, context), (url, context)
                    checked += 1
        assert checked > 1000

    def test_some_corpus_urls_match(self, universe, porn_log, lists):
        easylist, _ = lists
        assert any(
            easylist.matches(record.url,
                             MatchContext(first_party_host=record.page_domain,
                                          resource_type=record.resource_type))
            for record in porn_log.requests
            if not record.failed
        )


# ---------------------------------------------------------------------------
# Randomized rules vs randomized URLs
# ---------------------------------------------------------------------------

def random_rules(rng: random.Random, count: int):
    """Deterministic random filter lines spanning the supported syntax."""
    hosts = ("tracker.io", "ads.example.com", "cdn.net", "stats.co.uk")
    words = ("ad", "ads", "banner", "track", "pixel", "sync", "js", "img",
             "collect", "beacon")
    lines = []
    for _ in range(count):
        shape = rng.randrange(6)
        if shape == 0:
            line = f"||{rng.choice(hosts)}^"
        elif shape == 1:
            line = f"||{rng.choice(hosts)}/{rng.choice(words)}/"
        elif shape == 2:
            line = f"/{rng.choice(words)}/{rng.choice(words)}-"
        elif shape == 3:
            line = f"|https://{rng.choice(hosts)}/{rng.choice(words)}"
        elif shape == 4:
            line = f"/{rng.choice(words)}*{rng.choice(words)}^"
        else:
            line = f"{rng.choice(words)}.{rng.choice(('gif', 'js', 'png'))}|"
        options = []
        if rng.random() < 0.3:
            options.append(rng.choice(("third-party", "~third-party")))
        if rng.random() < 0.3:
            options.append(rng.choice(("script", "image", "subdocument",
                                       "xmlhttprequest")))
        if rng.random() < 0.3:
            domains = rng.sample(
                ("site1.com", "site2.com", "~bad.com", "~other.net"),
                rng.randrange(1, 3),
            )
            options.append("domain=" + "|".join(domains))
        if options:
            line += "$" + ",".join(options)
        if rng.random() < 0.25:
            line = "@@" + line
        lines.append(line)
    return lines


def random_urls(rng: random.Random, count: int):
    hosts = ("tracker.io", "sub.tracker.io", "ads.example.com", "clean.org",
             "cdn.net", "stats.co.uk", "unrelated.com")
    paths = ("/", "/ad/banner-x.js", "/ads/pixel.gif", "/loads.js",
             "/track/sync", "/js/app.js", "/collect?v=1&uid=abc",
             "/img/banner.png", "/static/beacon.gif", "/adsbygoogle.js")
    return [
        f"{rng.choice(('http', 'https'))}://{rng.choice(hosts)}{rng.choice(paths)}"
        for _ in range(count)
    ]


class TestRandomizedParity:
    def test_random_rules_random_urls(self):
        rng = random.Random(SEED)
        contexts = (
            MatchContext(),
            MatchContext(first_party_host="site1.com", resource_type="script"),
            MatchContext(first_party_host="bad.com", resource_type="image"),
            MatchContext(first_party_host="tracker.io",
                         resource_type="sub_frame"),
            MatchContext(first_party_host="unrelated.com",
                         resource_type="xhr"),
        )
        for trial in range(20):
            lines = random_rules(rng, 40)
            filter_list = FilterList.from_text("\n".join(lines))
            for url in random_urls(rng, 40):
                for context in contexts:
                    assert filter_list.matches(url, context) == \
                        filter_list.matches_linear(url, context), \
                        (trial, url, context)

    def test_exception_rules_survive_indexing(self):
        filter_list = FilterList.from_text(
            "||tracker.io^\n"
            "/ads/banner-\n"
            "@@||tracker.io/allowed/\n"
            "@@/ads/banner-ok-$domain=site1.com\n"
        )
        blocked = "https://tracker.io/x.js"
        allowed = "https://tracker.io/allowed/x.js"
        assert filter_list.matches(blocked)
        assert not filter_list.matches(allowed)
        assert filter_list.matches(blocked) == filter_list.matches_linear(blocked)
        assert filter_list.matches(allowed) == filter_list.matches_linear(allowed)
        banner = "https://cdn.net/ads/banner-ok-1.png"
        ctx_covered = MatchContext(first_party_host="site1.com")
        ctx_other = MatchContext(first_party_host="site2.com")
        assert not filter_list.matches(banner, ctx_covered)
        assert filter_list.matches(banner, ctx_other)
        assert filter_list.matches(banner, ctx_covered) == \
            filter_list.matches_linear(banner, ctx_covered)
        assert filter_list.matches(banner, ctx_other) == \
            filter_list.matches_linear(banner, ctx_other)

    def test_domain_option_parity(self):
        filter_list = FilterList.from_text(
            "/track/$domain=site1.com|~sub.site1.com\n"
            "||stats.co.uk^$third-party,script\n"
        )
        url = "https://stats.co.uk/track/x.js"
        for host in ("site1.com", "sub.site1.com", "stats.co.uk", ""):
            for rtype in ("script", "image", "document"):
                context = MatchContext(first_party_host=host,
                                       resource_type=rtype)
                assert filter_list.matches(url, context) == \
                    filter_list.matches_linear(url, context), (host, rtype)
