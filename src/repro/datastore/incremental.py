"""The incremental analysis engine: map churned sites, merge the rest.

PR 7 made *crawling* an evolved epoch scale with churn by splicing the
sites whose content hash did not change.  This module does the same for
*analysis*: every stored run is analyzed site by site through the
map/merge pairs of :mod:`repro.core.mapmerge`, and each site's partial
is persisted in the :class:`~repro.datastore.aggregates.AggregateStore`
keyed on ``(analysis_key, analysis_version, site_domain, content_hash,
run_ref)``.  Analyzing epoch N+1 then looks every site up by its *new*
content hash: spliced sites hit (their hash — and hence their stored
rows, by the purity contract — is unchanged), churned sites miss and
are mapped from their event rows.  The merge replays all partials in
run position order, so the resulting tables are byte-identical to the
monolithic pass whichever mix of cached and fresh partials fed it.

Invalidation is exactly the machinery delta crawls already trust, with
one strengthening: :class:`~repro.webgen.evolve.AnalysisHashIndex`
extends the splice-grade :class:`~repro.webgen.evolve.ContentHashIndex`
to also cover the attribution-only service fields (organization /
cert_org / in_disconnect) that party labeling reads but serving never
does — a consolidation epoch rewrites certificate organizations without
changing a byte on the wire, and cached label partials must not survive
it.

The engine deliberately lives in :mod:`repro.datastore` next to
:mod:`~repro.datastore.delta`: both are consumers of the slice index
and the store's purity contract; the pure per-site math stays in
:mod:`repro.core.mapmerge`.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.mapmerge import (
    ANALYSIS_VERSIONS,
    map_ats,
    map_banners,
    map_cookies,
    map_https,
    map_jsapi,
    map_labels,
    map_sync,
    map_visits,
)
from ..webgen.evolve import analysis_hash_index
from .aggregates import AggregateStore
from .delta import _slice_index, SiteSlice
from .serialize import (
    cookie_from_row,
    domains_hash,
    jscall_from_row,
    request_from_row,
    run_key,
    vantage_to_json,
    visit_from_row,
)
from .store import CrawlStore, MissingRunError

__all__ = ["IncrementalRunAnalyzer", "PORN_ANALYSES", "REGULAR_ANALYSES",
           "cached_sanitize"]

#: Which per-site analyses each run kind can feed.  The order matters
#: operationally (labels are mapped first so the HTTPS mapper can consume
#: the site's label events) but not semantically — each map is a pure
#: function of the site's rows.
PORN_ANALYSES: Tuple[str, ...] = ("labels", "ats", "cookies", "https",
                                  "banners", "sync", "jsapi", "visits")
REGULAR_ANALYSES: Tuple[str, ...] = ("labels", "ats")


class IncrementalRunAnalyzer:
    """Per-site partials for one stored run, cached across epochs.

    One instance wraps one ``(store, run)`` pair.  :meth:`partials`
    returns, for each requested analysis, the list of per-site partials
    in run position order — serving each from the aggregate cache when
    the site's analysis content hash hits, mapping it from the stored
    event rows when it misses.  Whenever a site's rows have to be read
    at all, *every* analysis of the run kind is mapped and cached in the
    same pass (the row read dominates, and it warms the cache for the
    sibling analyses), so a full study performs at most one row read per
    churned site.
    """

    def __init__(
        self,
        store: CrawlStore,
        universe,
        cache: Optional[AggregateStore],
        *,
        vantage,
        kind: str,
        domains: Sequence[str],
        keep_html: bool = True,
        analyses: Optional[Sequence[str]] = None,
        classifier=None,
        cert_lookup=None,
    ) -> None:
        self.store = store
        self.cache = cache
        self.kind = kind
        self._classifier = classifier
        self._cert_lookup = cert_lookup
        if analyses is None:
            analyses = PORN_ANALYSES if kind.endswith(":porn") \
                else REGULAR_ANALYSES
        self.analyses = tuple(analyses)

        state = store.find_run(universe.config, vantage, kind, domains,
                               keep_html=keep_html)
        if state is None or not state.complete:
            held = len(state.completed) if state is not None else 0
            raise MissingRunError(
                f"store {store.path} holds {held}/{len(domains)} sites for "
                f"{kind}; incremental analysis needs the complete run"
            )
        self.run = state.run_id
        self._slices: Dict[str, SiteSlice] = _slice_index(store, self.run)
        self.client_ip = store._run_header(self.run)[1]

        vantage_digest = hashlib.sha256(
            vantage_to_json(vantage).encode("utf-8")
        ).hexdigest()[:16]
        self._key_suffix = f"{kind}:{vantage_digest}:{int(keep_html)}"
        self.run_ref = (
            run_key(universe.config, vantage, kind, keep_html=keep_html)
            + ":" + domains_hash(domains)
        )
        self._hashes = analysis_hash_index(universe)
        self._lock = threading.Lock()
        self._done: Dict[str, List[object]] = {}

    def analysis_key(self, name: str) -> str:
        """Cache key prefix: analysis name + everything that selects
        which rows a site contributes (kind, vantage, HTML retention).
        Content hashes are vantage-independent; partials are not."""
        return f"{name}:{self._key_suffix}"

    # -- the engine ------------------------------------------------------

    def partials(self, names: Sequence[str]) -> Dict[str, List[object]]:
        """Per-site partials for ``names``, each in run position order."""
        for name in names:
            if name not in self.analyses:
                raise ValueError(
                    f"analysis {name!r} not available for kind {self.kind!r}"
                )
        with self._lock:
            todo = [name for name in names if name not in self._done]
            if todo:
                self._compute(todo)
                if self.cache is not None:
                    self.cache.persist_stats()
            return {name: self._done[name] for name in names}

    def _compute(self, names: List[str]) -> None:
        hashes = {domain: self._hashes.hash_of(domain)
                  for domain in self._slices}
        cached: Dict[str, Dict[str, object]] = {}
        if self.cache is not None:
            wanted = {domain: content_hash
                      for domain, content_hash in hashes.items()
                      if content_hash is not None}
            for name in names:
                cached[name] = self.cache.get_many(
                    self.analysis_key(name), ANALYSIS_VERSIONS[name],
                    wanted,
                )
        results: Dict[str, List[object]] = {name: [] for name in names}
        to_put: List[Tuple[str, int, str, str, str, object]] = []
        for domain, slice_ in self._slices.items():
            content_hash = hashes[domain]
            found = {name: cached[name][domain] for name in names
                     if name in cached and domain in cached[name]}
            if len(found) < len(names):
                # Rows must be read anyway — map every analysis of the
                # run kind in this one pass and cache them all.
                mapped = self._map_site(slice_)
                if self.cache is not None and content_hash is not None:
                    to_put.extend(
                        (self.analysis_key(name), ANALYSIS_VERSIONS[name],
                         domain, content_hash, self.run_ref, partial)
                        for name, partial in mapped.items()
                        if name not in found
                    )
                found.update(
                    (name, mapped[name]) for name in names
                    if name not in found
                )
            for name in names:
                results[name].append(found[name])
        if to_put:
            self.cache.put_many(to_put)
        self._done.update(results)

    # -- site loading + mapping -----------------------------------------

    def _load_site(self, slice_: SiteSlice):
        visits = [
            visit_from_row(row) for row in self.store.site_event_rows(
                self.run, slice_.domain, "visits",
                slice_.visits_start, slice_.visits_start + 1,
            )
        ]
        requests = [
            request_from_row(row) for row in self.store.site_event_rows(
                self.run, slice_.domain, "requests",
                slice_.requests_start,
                slice_.requests_start + slice_.requests,
            )
        ]
        cookies = [
            cookie_from_row(row) for row in self.store.site_event_rows(
                self.run, slice_.domain, "cookies",
                slice_.cookies_start, slice_.cookies_start + slice_.cookies,
            )
        ]
        js_calls = [
            jscall_from_row(row) for row in self.store.site_event_rows(
                self.run, slice_.domain, "js_calls",
                slice_.js_calls_start,
                slice_.js_calls_start + slice_.js_calls,
            )
        ]
        return visits, requests, cookies, js_calls

    def _map_site(self, slice_: SiteSlice) -> Dict[str, object]:
        visits, requests, cookies, js_calls = self._load_site(slice_)
        mapped: Dict[str, object] = {}
        for name in self.analyses:
            if name == "labels":
                mapped[name] = map_labels(requests,
                                          cert_lookup=self._cert_lookup)
            elif name == "ats":
                if self._classifier is None:
                    raise ValueError(
                        "IncrementalRunAnalyzer needs a classifier to map "
                        "the 'ats' analysis"
                    )
                mapped[name] = map_ats(requests, self._classifier)
            elif name == "cookies":
                mapped[name] = map_cookies(visits, cookies,
                                           client_ip=self.client_ip)
            elif name == "https":
                labels_partial = mapped.get("labels")
                if labels_partial is None:
                    labels_partial = map_labels(
                        requests, cert_lookup=self._cert_lookup)
                mapped[name] = map_https(
                    visits, requests, cookies,
                    client_ip=self.client_ip,
                    labels_partial=labels_partial,
                )
            elif name == "banners":
                mapped[name] = map_banners(visits)
            elif name == "sync":
                mapped[name] = map_sync(cookies, requests)
            elif name == "jsapi":
                mapped[name] = map_jsapi(js_calls)
            elif name == "visits":
                mapped[name] = map_visits(visits)
            else:  # pragma: no cover - guarded by __init__/partials
                raise ValueError(f"unknown analysis {name!r}")
        return mapped


# --------------------------------------------------------------------------
# Corpus sanitization through the same cache.
# --------------------------------------------------------------------------

def cached_sanitize(universe, candidates: Sequence[str], vantage,
                    cache: AggregateStore):
    """§3 sanitization with per-candidate verdicts in the aggregate cache.

    The sanitize verdict for one candidate — ``corpus`` /
    ``unresponsive`` / ``non_adult`` — is a pure function of the
    candidate's served content (the landing page and its closure) and
    the vantage, so it caches under exactly the keying the map/merge
    partials use: the candidate's analysis content hash plus a
    vantage-digest key.  Candidates with no spec at all (keyword false
    positives pointing at nothing) hash to the ``absent`` sentinel —
    they stay unresponsive until an epoch mints a spec for them, which
    changes the hash.  Across epochs only churned candidates are
    re-visited; the partition order is the candidate order either way,
    so the assembled :class:`~repro.core.corpus.SanitizedCorpus` is
    byte-identical to :func:`~repro.core.corpus.sanitize_candidates`.
    """
    from ..browser.browser import Browser
    from ..core.corpus import SanitizedCorpus, classify_adult_content
    from ..crawler.vpn import client_for

    digest = hashlib.sha256(
        vantage_to_json(vantage).encode("utf-8")
    ).hexdigest()[:16]
    key = f"sanitize:{digest}"
    version = ANALYSIS_VERSIONS["sanitize"]
    hashes = analysis_hash_index(universe)
    run_ref = "sanitize:" + domains_hash(candidates)

    site_hashes = {domain: hashes.hash_of(domain) or "absent"
                   for domain in candidates}
    verdicts = cache.get_many(key, version, site_hashes)
    buckets = {"corpus": [], "unresponsive": [], "non_adult": []}
    to_put: List[Tuple[str, int, str, str, str, object]] = []
    client = None
    for domain in candidates:
        verdict = verdicts.get(domain)
        if verdict not in buckets:
            if client is None:
                client = client_for(vantage, epoch="sanitization")
            visit = Browser(universe, client).visit(domain)
            if not visit.success:
                verdict = "unresponsive"
            elif classify_adult_content(visit.html):
                verdict = "corpus"
            else:
                verdict = "non_adult"
            to_put.append((key, version, domain, site_hashes[domain],
                           run_ref, verdict))
        buckets[verdict].append(domain)
    if to_put:
        cache.put_many(to_put)
    return SanitizedCorpus(corpus=buckets["corpus"],
                           unresponsive=buckets["unresponsive"],
                           non_adult=buckets["non_adult"])
