"""Faithful row serializers for the crawl datastore.

Every converter here is paired with an inverse such that
``from_row(to_row(record)) == record`` field-for-field — the roundtrip
tests in ``tests/test_datastore.py`` assert this over whole crawl logs.
Two representation choices make that hold:

* SQLite has no boolean type, so flags travel as 0/1 and are restored
  with ``bool()``;
* :class:`~repro.js.api.JSCall` argument dicts travel as canonical JSON
  (sorted keys, no whitespace).  The generators only put ``str``/``int``
  values in ``args``, which JSON round-trips exactly; dict equality is
  order-insensitive, so key sorting is free canonicalization.

The module also owns *run identity*: :func:`run_key` is the content hash
of (:class:`UniverseConfig`, vantage point, crawler kind) — the same
universe crawled the same way from the same place always lands on the
same manifest row, which is what makes resume and store-backed analysis
find their data.
"""

from __future__ import annotations

import hashlib
import json
import sys
from dataclasses import asdict, fields, is_dataclass
from typing import Any, Dict, Optional, Sequence, Tuple

from ..browser.events import CookieRecord, CrawlLog, PageVisit, RequestRecord
from ..js.api import JSCall
from ..net.geo import VantagePoint
from ..webgen.config import CalibrationTargets, UniverseConfig

__all__ = [
    "COOKIE_COLUMNS",
    "JSCALL_COLUMNS",
    "REQUEST_COLUMNS",
    "VISIT_COLUMNS",
    "config_from_json",
    "config_to_json",
    "cookie_from_row",
    "cookie_to_row",
    "domains_hash",
    "jscall_from_row",
    "jscall_to_row",
    "request_from_row",
    "request_to_row",
    "run_key",
    "vantage_to_json",
    "visit_from_row",
    "visit_to_row",
]

#: Event-table column lists, in ``*_to_row`` order.  Shared by the
#: store's insert statements, the cursor SELECTs, and the reshard tool
#: so the three can never drift apart.
VISIT_COLUMNS = (
    "site_domain", "url", "success", "status", "failure_reason",
    "html", "https",
)
REQUEST_COLUMNS = (
    "url", "fqdn", "scheme", "page_domain", "resource_type", "initiator",
    "referrer", "seq", "status", "failed", "error", "redirect_location",
)
COOKIE_COLUMNS = (
    "page_domain", "set_by_host", "domain", "name", "value", "session",
    "secure", "over_https", "seq",
)
JSCALL_COLUMNS = ("script_url", "document_host", "api", "args_json")


# ----------------------------------------------------------------------
# Run identity
# ----------------------------------------------------------------------

def _canonical(value: Any) -> str:
    """Deterministic JSON text for hashing and storage."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def config_to_json(config: UniverseConfig) -> str:
    """Canonical JSON for a :class:`UniverseConfig` (tuples become lists)."""
    return _canonical(asdict(config))


def _tuplify(value: Any) -> Any:
    """Undo JSON's tuple→list flattening, recursively.

    Every sequence field of :class:`CalibrationTargets` /
    :class:`UniverseConfig` is a tuple, so a blanket list→tuple
    conversion restores the exact dataclass shape.
    """
    if isinstance(value, list):
        return tuple(_tuplify(item) for item in value)
    if isinstance(value, dict):
        return {key: _tuplify(item) for key, item in value.items()}
    return value


def config_from_json(text: str) -> UniverseConfig:
    """Inverse of :func:`config_to_json` (exact dataclass equality)."""
    payload = json.loads(text)
    targets = CalibrationTargets(
        **{key: _tuplify(value) for key, value in payload.pop("targets").items()}
    )
    return UniverseConfig(targets=targets, **payload)


def vantage_to_json(vantage: VantagePoint) -> str:
    return _canonical(asdict(vantage))


def run_key(
    config: UniverseConfig,
    vantage: VantagePoint,
    kind: str,
    *,
    epoch: str = "crawl",
    keep_html: bool = True,
) -> str:
    """Content hash identifying one logical crawl.

    ``kind`` names the crawler and corpus role (``openwpm:porn``,
    ``openwpm:regular``, ``selenium:inspections`` ...); ``epoch`` and
    ``keep_html`` are folded in because both change what a session
    records (the universe serves per-epoch tokens, and HTML retention
    changes the stored visits).
    """
    payload = _canonical({
        "config": json.loads(config_to_json(config)),
        "vantage": json.loads(vantage_to_json(vantage)),
        "kind": kind,
        "epoch": epoch,
        "keep_html": keep_html,
    })
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def domains_hash(domains: Sequence[str]) -> str:
    """Content hash of an ordered site list (order matters for resume)."""
    joined = "\n".join(domains)
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Record rows (column order matches the schema DDL)
# ----------------------------------------------------------------------

def _intern(value: Optional[str]) -> Optional[str]:
    """Collapse repeated decoded strings to one object per value.

    SQLite materializes a fresh ``str`` for every fetched cell, so a
    domain that appears in 10k rows would otherwise become 10k equal
    but distinct objects — and the analyses retain many of them in
    per-page sets.  Interning the low-cardinality columns (domains,
    hosts, resource types, cookie names) makes every retained copy
    share one object; high-cardinality columns (URLs, cookie values,
    HTML) are left alone so the intern table stays small.
    """
    return None if value is None else sys.intern(value)


def visit_to_row(visit: PageVisit) -> Tuple:
    return (visit.site_domain, visit.url, int(visit.success), visit.status,
            visit.failure_reason, visit.html, int(visit.https))


def visit_from_row(row: Sequence) -> PageVisit:
    return PageVisit(
        site_domain=_intern(row[0]), url=row[1], success=bool(row[2]),
        status=row[3], failure_reason=_intern(row[4]), html=row[5],
        https=bool(row[6]),
    )


def request_to_row(record: RequestRecord) -> Tuple:
    return (record.url, record.fqdn, record.scheme, record.page_domain,
            record.resource_type, record.initiator, record.referrer,
            record.seq, record.status, int(record.failed), record.error,
            record.redirect_location)


def request_from_row(row: Sequence) -> RequestRecord:
    return RequestRecord(
        url=row[0], fqdn=_intern(row[1]), scheme=_intern(row[2]),
        page_domain=_intern(row[3]), resource_type=_intern(row[4]),
        initiator=_intern(row[5]), referrer=_intern(row[6]), seq=row[7],
        status=row[8], failed=bool(row[9]), error=_intern(row[10]),
        redirect_location=row[11],
    )


def cookie_to_row(cookie: CookieRecord) -> Tuple:
    return (cookie.page_domain, cookie.set_by_host, cookie.domain,
            cookie.name, cookie.value, int(cookie.session),
            int(cookie.secure), int(cookie.over_https), cookie.seq)


def cookie_from_row(row: Sequence) -> CookieRecord:
    return CookieRecord(
        page_domain=_intern(row[0]), set_by_host=_intern(row[1]),
        domain=_intern(row[2]), name=_intern(row[3]), value=row[4],
        session=bool(row[5]), secure=bool(row[6]), over_https=bool(row[7]),
        seq=row[8],
    )


def jscall_to_row(call: JSCall) -> Tuple:
    return (call.script_url, call.document_host, call.api,
            _canonical(call.args))


def jscall_from_row(row: Sequence) -> JSCall:
    return JSCall(script_url=_intern(row[0]), document_host=_intern(row[1]),
                  api=_intern(row[2]), args=json.loads(row[3]))
