"""Persistent per-site analysis partials: the map/merge aggregate cache.

The incremental analysis engine (:mod:`repro.datastore.incremental`)
expresses each cacheable analysis as ``map(site rows) -> partial`` +
``merge(partials) -> table``.  Partials are tiny compared to the event
rows they summarize, and — keyed on the site's *analysis* content hash
(:class:`repro.webgen.evolve.AnalysisHashIndex`) — they stay valid for
as long as the site's served content and every attribution fact an
analysis can read stay unchanged.  Across epochs that is the ~95% of
sites a delta crawl splices, so analyzing epoch N+1 only maps the churn.

This module is the persistence layer: one small SQLite database holding
an ``analysis_aggregates`` table next to the shard files.  The primary
key is the ISSUE's five-tuple ``(analysis_key, analysis_version,
site_domain, content_hash, run_ref)``:

* ``analysis_key`` folds the analysis name together with the run kind,
  a vantage-point digest, and the ``keep_html`` flag — everything that
  selects *which* observed rows a site contributes (content hashes are
  vantage-independent by design, partials are not);
* ``analysis_version`` is the code version of the map function
  (:data:`repro.core.mapmerge.ANALYSIS_VERSIONS`); bumping it orphans
  every cached partial of that analysis;
* ``content_hash`` is the self-invalidating part: a churned site hashes
  differently, so its stale partials are simply never looked up again;
* ``run_ref`` records provenance (which stored run produced the rows)
  — lookups deliberately ignore it, because two runs that agree on all
  other key parts are byte-identical by the store's purity contract.

Corrupt or unreadable rows are treated as misses (the engine falls back
to mapping the site), never as answers: a wrong table is the one failure
mode this cache must not have.
"""

from __future__ import annotations

import gc
import marshal
import os
import pickle
import re
import sqlite3
import threading
import time
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

__all__ = ["AggregateStore", "AggregateCacheStats", "aggregates_path"]

AGGREGATES_FILE = "aggregates.sqlite"

#: Epoch sibling stores (``<store>-eN``, see
#: :func:`repro.service.jobs.epoch_store_path`) share the base store's
#: cache — cross-epoch reuse is the entire point of the cache.
_EPOCH_SUFFIX = re.compile(r"-e\d+$")

_DDL = """
CREATE TABLE IF NOT EXISTS analysis_aggregates (
    analysis_key     TEXT NOT NULL,
    analysis_version INTEGER NOT NULL,
    site_domain      TEXT NOT NULL,
    content_hash     TEXT NOT NULL,
    run_ref          TEXT NOT NULL,
    payload          BLOB NOT NULL,
    created_at       REAL NOT NULL,
    PRIMARY KEY (analysis_key, analysis_version, site_domain,
                 content_hash, run_ref)
);
CREATE TABLE IF NOT EXISTS aggregate_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""


def _encode(value: object) -> bytes:
    """Serialize one partial, marshal-first.

    Partials are plain tuples/dicts of primitives by the map/merge
    contract, and ``marshal`` decodes those several times faster than
    pickle — a warm study decodes every partial of the corpus, so the
    codec is on the hot path.  Anything marshal cannot take (no partial
    today) falls back to pickle; a one-byte tag keeps the formats
    self-describing.
    """
    try:
        return b"M" + marshal.dumps(value, 4)
    except (ValueError, TypeError):
        return b"P" + pickle.dumps(value, protocol=4)


def _decode(payload: bytes) -> object:
    """Inverse of :func:`_encode`; raises on any malformed payload."""
    tag, body = payload[:1], payload[1:]
    if tag == b"M":
        return marshal.loads(body)
    if tag == b"P":
        return pickle.loads(body)
    raise ValueError(f"unknown aggregate payload tag {tag!r}")


def aggregates_path(store_path: str) -> str:
    """Where a store's aggregate cache lives.

    Mirrors :func:`repro.service.jobs.journal_path`: a sharded (v2)
    directory store keeps ``aggregates.sqlite`` inside the directory; a
    v1 single-file store gets a ``<path>.aggregates`` sibling.  An
    ``-eN`` epoch suffix is stripped first so every epoch sibling of a
    longitudinal series resolves to the *base* store's cache file.
    """
    path = _EPOCH_SUFFIX.sub("", str(store_path))
    if os.path.isdir(path):
        return os.path.join(path, AGGREGATES_FILE)
    return path + ".aggregates"


@dataclass
class AggregateCacheStats:
    """Hit/miss counters for one process's use of the cache."""

    hits: int = 0
    misses: int = 0
    corrupt: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def as_dict(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "corrupt": self.corrupt}


class AggregateStore:
    """The ``analysis_aggregates`` SQLite cache next to the shard files.

    One connection, serialized by a lock (the write volume is a few
    thousand tiny rows per epoch — contention is not the bottleneck),
    WAL so a concurrently-running study can read while another warms.
    """

    def __init__(self, path: str, *, timeout: float = 30.0) -> None:
        self.path = str(path)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(
            self.path, timeout=timeout, check_same_thread=False,
            isolation_level=None,
        )
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.executescript(_DDL)
        self.stats = AggregateCacheStats()

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "AggregateStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the cache proper ----------------------------------------------

    def get(self, analysis_key: str, analysis_version: int,
            site_domain: str, content_hash: str) -> Optional[object]:
        """The cached partial for one (analysis, site, content) triple.

        ``run_ref`` is not part of the lookup: any run that agrees on
        the other four key parts produced identical rows (store purity),
        so the newest row wins.  Returns ``None`` — and counts a miss —
        when absent or unreadable.
        """
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM analysis_aggregates"
                " WHERE analysis_key=? AND analysis_version=?"
                " AND site_domain=? AND content_hash=?"
                " ORDER BY created_at DESC LIMIT 1",
                (analysis_key, analysis_version, site_domain, content_hash),
            ).fetchone()
        if row is None:
            self.stats.misses += 1
            return None
        try:
            value = _decode(row[0])
        except Exception:
            # A torn write or bit rot must degrade to a recompute, never
            # to a wrong table.
            self.stats.misses += 1
            self.stats.corrupt += 1
            return None
        self.stats.hits += 1
        return value

    def get_many(self, analysis_key: str, analysis_version: int,
                 wanted: Dict[str, str]) -> Dict[str, object]:
        """Batch lookup: ``{site_domain: partial}`` for every hit.

        ``wanted`` maps each site to the content hash it must match.
        One scan of the analysis's rows replaces one query per site —
        an incremental study looks every corpus site up on every pass,
        and the per-call round-trips dominate a fully warm pass.  Hit,
        miss, and corrupt accounting matches :meth:`get` row for row;
        like there, the newest row wins when several match.
        """
        if not wanted:
            return {}
        with self._lock:
            rows = self._conn.execute(
                "SELECT site_domain, content_hash, payload"
                " FROM analysis_aggregates"
                " WHERE analysis_key=? AND analysis_version=?"
                " ORDER BY created_at ASC",
                (analysis_key, analysis_version),
            ).fetchall()
        matched: Dict[str, bytes] = {}
        for domain, content_hash, payload in rows:
            if wanted.get(domain) == content_hash:
                matched[domain] = payload
        results: Dict[str, object] = {}
        # Decoding a whole corpus of partials allocates hundreds of
        # thousands of small tuples in one burst; with a large live heap
        # (a built universe) the allocation-count trigger would run
        # several full collections *inside* the burst, each scanning the
        # whole heap.  None of the new objects are garbage — they all go
        # into ``results`` — so pause collection for the burst.
        gc_enabled = gc.isenabled()
        if gc_enabled:
            gc.disable()
        try:
            for domain, payload in matched.items():
                try:
                    results[domain] = _decode(payload)
                    self.stats.hits += 1
                except Exception:
                    self.stats.misses += 1
                    self.stats.corrupt += 1
        finally:
            if gc_enabled:
                gc.enable()
        self.stats.misses += len(wanted) - len(matched)
        return results

    def put(self, analysis_key: str, analysis_version: int,
            site_domain: str, content_hash: str, run_ref: str,
            value: object) -> None:
        self.put_many([(analysis_key, analysis_version, site_domain,
                        content_hash, run_ref, value)])

    def put_many(
        self,
        rows: Iterable[Tuple[str, int, str, str, str, object]],
    ) -> None:
        """Insert many partials in one transaction (idempotent)."""
        now = time.time()
        encoded = [
            (key, version, domain, content_hash, run_ref,
             _encode(value), now)
            for key, version, domain, content_hash, run_ref, value in rows
        ]
        if not encoded:
            return
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._conn.executemany(
                    "INSERT OR REPLACE INTO analysis_aggregates"
                    " (analysis_key, analysis_version, site_domain,"
                    "  content_hash, run_ref, payload, created_at)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?)",
                    encoded,
                )
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            self._conn.execute("COMMIT")

    # -- introspection (``repro store info -v``) ------------------------

    def row_count(self) -> int:
        with self._lock:
            return self._conn.execute(
                "SELECT COUNT(*) FROM analysis_aggregates"
            ).fetchone()[0]

    def total_bytes(self) -> int:
        """Total payload bytes cached (not file size — the useful part)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT COALESCE(SUM(LENGTH(payload)), 0)"
                " FROM analysis_aggregates"
            ).fetchone()
        return row[0]

    def per_analysis_rows(self) -> Dict[str, int]:
        """Row counts grouped by the analysis name prefix of the key."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT analysis_key, COUNT(*) FROM analysis_aggregates"
                " GROUP BY analysis_key"
            ).fetchall()
        counts: Dict[str, int] = {}
        for key, count in rows:
            name = key.split(":", 1)[0]
            counts[name] = counts.get(name, 0) + count
        return counts

    def persist_stats(self) -> None:
        """Record this process's counters as the cache's last-study stats."""
        import json

        payload = json.dumps(self.stats.as_dict(), sort_keys=True)
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._conn.execute(
                    "INSERT OR REPLACE INTO aggregate_meta (key, value)"
                    " VALUES ('last_study', ?)",
                    (payload,),
                )
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            self._conn.execute("COMMIT")

    def last_study_stats(self) -> Optional[Dict[str, int]]:
        import json

        with self._lock:
            row = self._conn.execute(
                "SELECT value FROM aggregate_meta WHERE key='last_study'"
            ).fetchone()
        if row is None:
            return None
        try:
            return json.loads(row[0])
        except ValueError:
            return None
